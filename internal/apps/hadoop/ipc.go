package hadoop

import (
	"context"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// IPCClient is Hadoop's shared RPC client.
type IPCClient struct {
	app *App
}

// NewIPCClient returns a client for the deployment.
func NewIPCClient(app *App) *IPCClient { return &IPCClient{app: app} }

// invokeRPC performs one remote call against the given service node.
//
// Throws: ConnectException, SocketTimeoutException, IllegalArgumentException.
func (c *IPCClient) invokeRPC(ctx context.Context, node, method string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	if method == "" {
		return "", errmodel.New("IllegalArgumentException", "empty method")
	}
	var out string
	err := c.app.Cluster.Call(ctx, node, func(n *common.Node) error {
		out = method + "@" + n.Name
		return nil
	})
	return out, err
}

// Call invokes an RPC with the standard client retry policy: bounded
// attempts with a fixed delay. A malformed request (IllegalArgument) is
// the caller's fault and is never retried.
func (c *IPCClient) Call(ctx context.Context, node, method string) (string, error) {
	maxRetries := c.app.Config.GetInt("ipc.client.connect.max.retries", 5)
	delay := c.app.Config.GetDuration("ipc.client.connect.retry.delay", 500*time.Millisecond)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		out, err := c.invokeRPC(ctx, node, method)
		if err == nil {
			return out, nil
		}
		if errmodel.IsClass(err, "IllegalArgumentException") {
			return "", err
		}
		last = err
		vclock.Sleep(ctx, delay)
	}
	return "", last
}

// connectOnce opens a connection to the service node. Lower layers may
// wrap permission failures inside the general HadoopException.
//
// Throws: ConnectException, HadoopException.
func (c *IPCClient) connectOnce(ctx context.Context, node string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	return c.app.Cluster.Call(ctx, node, func(*common.Node) error { return nil })
}

// SetupConnection establishes a connection with retry.
//
// BUG (IF, wrong retry policy — the unpatched HADOOP-16683, Listing 2):
// a bare AccessControlException is correctly not retried, but other code
// paths wrap AccessControlException inside HadoopException, and the
// wrapper IS retried here: a permission failure burns every retry attempt
// before surfacing.
func (c *IPCClient) SetupConnection(ctx context.Context, node string) error {
	maxRetries := c.app.Config.GetInt("ipc.client.connect.max.retries", 5)
	delay := c.app.Config.GetDuration("ipc.client.connect.retry.delay", 500*time.Millisecond)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := c.connectOnce(ctx, node)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "AccessControlException") {
			return err
		}
		last = err
		vclock.Sleep(ctx, delay)
	}
	return last
}

// NameserviceFailover routes calls across namenode replicas.
type NameserviceFailover struct {
	app   *App
	nodes []string
}

// NewNameserviceFailover returns a failover proxy over both namenodes.
func NewNameserviceFailover(app *App) *NameserviceFailover {
	return &NameserviceFailover{app: app, nodes: []string{"nn1", "nn2"}}
}

// callNamenode invokes the namenode at index idx.
//
// Throws: ConnectException, SocketTimeoutException.
func (f *NameserviceFailover) callNamenode(ctx context.Context, idx int, method string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	var out string
	err := f.app.Cluster.Call(ctx, f.nodes[idx], func(n *common.Node) error {
		out = method + "@" + n.Name
		return nil
	})
	return out, err
}

// Call tries each namenode in turn. There is no pause between attempts on
// purpose: every retry targets a different replica (the missing-delay FP
// shape for WASABI).
func (f *NameserviceFailover) Call(ctx context.Context, method string) (string, error) {
	var last error
	for retry := 0; retry < len(f.nodes); retry++ {
		out, err := f.callNamenode(ctx, retry, method)
		if err == nil {
			return out, nil
		}
		last = err
		f.app.log(ctx, "namenode %s failed, failing over", f.nodes[retry])
	}
	return "", last
}

// RPCProxy memoizes a connection and re-drives single calls.
type RPCProxy struct {
	app *App
}

// NewRPCProxy returns a proxy for the deployment.
func NewRPCProxy(app *App) *RPCProxy { return &RPCProxy{app: app} }

// proxyCall performs one proxied invocation.
//
// Throws: SocketTimeoutException.
func (p *RPCProxy) proxyCall(ctx context.Context, id int) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	vclock.Elapse(ctx, time.Millisecond)
	return nil
}

// Invoke performs a proxied call with a small bounded retry and pause.
// The cap is correct; callers re-drive Invoke across many requests per
// run and tolerate individual failures — the caller-level re-driving that
// becomes a missing-cap false positive (§4.3).
func (p *RPCProxy) Invoke(ctx context.Context, id int) error {
	const maxRetries = 3
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := p.proxyCall(ctx, id)
		if err == nil {
			return nil
		}
		last = err
		vclock.Sleep(ctx, 100*time.Millisecond)
	}
	return last
}
