package hadoop

import "wasabi/internal/apps/meta"

// Manifest is the ground-truth record of every retry code structure in
// this package; detectors never read it.
func Manifest() []meta.Structure {
	return []meta.Structure{
		{
			App: "HA", Coordinator: "hadoop.IPCClient.Call",
			Retried: []string{"hadoop.IPCClient.invokeRPC"},
			File:    "ipc.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + delay, IllegalArgumentException excluded",
		},
		{
			App: "HA", Coordinator: "hadoop.IPCClient.SetupConnection",
			Retried: []string{"hadoop.IPCClient.connectOnce"},
			File:    "ipc.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.WrongPolicyRetried,
			Note: "IF: HadoopException-wrapped AccessControlException is retried (unpatched HADOOP-16683); invisible to all WASABI detectors (false negative)",
		},
		{
			App: "HA", Coordinator: "hadoop.NameserviceFailover.Call",
			Retried: []string{"hadoop.NameserviceFailover.callNamenode"},
			File:    "ipc.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, DelayUnneeded: true,
			Note: "no pause, but each attempt targets a different namenode (missing-delay FP source)",
		},
		{
			App: "HA", Coordinator: "hadoop.RPCProxy.Invoke",
			Retried: []string{"hadoop.RPCProxy.proxyCall"},
			File:    "ipc.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, HarnessRetried: true,
			Note: "correct cap; callers re-drive it per request (missing-cap FP source)",
		},
		{
			App: "HA", Coordinator: "hadoop.FSShell.CopyWithRetry",
			Retried: []string{"hadoop.FSShell.copyOnce"},
			File:    "services.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: copy re-attempts issued back to back",
		},
		{
			App: "HA", Coordinator: "hadoop.TokenRenewer.RenewLoop",
			Retried: []string{"hadoop.TokenRenewer.renewToken"},
			File:    "services.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingCap,
			Note: "WHEN: unbounded token renewal retry (delay present)",
		},
		{
			App: "HA", Coordinator: "hadoop.GroupMappingService.Refresh",
			Retried: []string{"hadoop.GroupMappingService.fetchGroups"},
			File:    "services.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: false, Bug: meta.MissingDelay,
			Note: "WHEN: directory re-queries back to back; counter named 'tries' (CodeQL keyword miss); uncovered by the suite",
		},
		{
			App: "HA", Coordinator: "hadoop.ExitUtil.RunWithRetries",
			Retried: []string{"hadoop.ExitUtil.runCommand"},
			File:    "launcher.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.WrongPolicyRetried,
			Note: "IF: ExitException retried here though not retried anywhere else (retry-ratio outlier, 1/3)",
		},
		{
			App: "HA", Coordinator: "hadoop.ServiceLauncher.LaunchLoop",
			Retried: []string{"hadoop.ServiceLauncher.launchOnce"},
			File:    "launcher.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + delay, ExitException excluded (majority policy)",
		},
		{
			App: "HA", Coordinator: "hadoop.ConfigPusher.processPush",
			Retried: []string{"hadoop.ConfigPusher.pushOnce"},
			File:    "launcher.go", Mechanism: meta.Queue, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct queue re-enqueue retry: per-task cap and pause",
		},
		{
			App: "HA", Coordinator: "hadoop.KMSClient.Decrypt",
			Retried: []string{"hadoop.KMSClient.decryptOnce"},
			File:    "launcher.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + exponential backoff",
		},
	}
}
