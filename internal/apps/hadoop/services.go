package hadoop

import (
	"context"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// FSShell implements filesystem shell commands.
type FSShell struct {
	app *App
}

// NewFSShell returns a shell bound to the deployment.
func NewFSShell(app *App) *FSShell { return &FSShell{app: app} }

// copyOnce copies one file to the target service node.
//
// Throws: IOException, FileNotFoundException.
func (s *FSShell) copyOnce(ctx context.Context, src, dst string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	v, ok := s.app.Store.Get("file/" + src)
	if !ok {
		return errmodel.Newf("FileNotFoundException", "no such file %s", src)
	}
	s.app.Store.Put("file/"+dst, v)
	return nil
}

// CopyWithRetry copies a file, re-attempting transient I/O failures up to
// the configured cap. A missing source aborts immediately.
//
// BUG (WHEN, missing delay): re-attempts are issued back to back against
// the same filesystem.
func (s *FSShell) CopyWithRetry(ctx context.Context, src, dst string) error {
	maxRetries := s.app.Config.GetInt("fs.shell.copy.retries", 4)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := s.copyOnce(ctx, src, dst)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "FileNotFoundException") {
			return err
		}
		last = err
	}
	return last
}

// TokenRenewer keeps delegation tokens fresh.
type TokenRenewer struct {
	app *App
}

// NewTokenRenewer returns a renewer for the deployment.
func NewTokenRenewer(app *App) *TokenRenewer { return &TokenRenewer{app: app} }

// renewToken renews one delegation token with the token service.
//
// Throws: ServiceException.
func (t *TokenRenewer) renewToken(ctx context.Context, token string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	t.app.Store.Put("token/"+token, "renewed")
	return nil
}

// RenewLoop renews a token, retrying until the service accepts it.
//
// BUG (WHEN, missing cap): tokens must never lapse, so renewal is retried
// forever (with a polite delay); an unhealthy token service wedges the
// renewer thread here.
func (t *TokenRenewer) RenewLoop(ctx context.Context, token string) {
	retryInterval := 300 * time.Millisecond
	for {
		err := t.renewToken(ctx, token)
		if err == nil {
			return
		}
		t.app.log(ctx, "token renewal failed: %v", err)
		vclock.Sleep(ctx, retryInterval)
	}
}

// GroupMappingService resolves user group membership from a directory
// service.
type GroupMappingService struct {
	app *App
}

// NewGroupMappingService returns a resolver.
func NewGroupMappingService(app *App) *GroupMappingService {
	return &GroupMappingService{app: app}
}

// fetchGroups queries the directory service for a user's groups.
//
// Throws: ConnectException.
func (g *GroupMappingService) fetchGroups(ctx context.Context, user string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	if v, ok := g.app.Store.Get("groups/" + user); ok {
		return v, nil
	}
	return "users", nil
}

// Refresh re-resolves a user's groups, re-attempting directory hiccups.
//
// BUG (WHEN, missing delay): re-attempts hammer the directory service
// back to back; the counter is named "tries", hiding the loop from
// keyword-filtered structural analysis.
func (g *GroupMappingService) Refresh(ctx context.Context, user string) (string, error) {
	const maxTries = 5
	var last error
	for tries := 0; tries < maxTries; tries++ {
		groups, err := g.fetchGroups(ctx, user)
		if err == nil {
			g.app.Store.Put("groups/"+user, groups)
			return groups, nil
		}
		last = err
	}
	return "", last
}
