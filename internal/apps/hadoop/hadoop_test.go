package hadoop

import (
	"context"
	"testing"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/trace"
)

func injected(coordinator, retried, exc string, k int) (context.Context, *trace.Run) {
	in := fault.NewInjector([]fault.Rule{{
		Loc: fault.Location{Coordinator: coordinator, Retried: retried, Exception: exc},
		K:   k,
	}})
	run := trace.NewRun("t")
	return fault.With(trace.With(context.Background(), run), in), run
}

// TestSetupConnectionRetriesWrappedACE demonstrates the unpatched
// HADOOP-16683 policy bug: a HadoopException (which in production wraps
// AccessControlException) is retried to exhaustion.
func TestSetupConnectionRetriesWrappedACE(t *testing.T) {
	app := New()
	ctx, run := injected("hadoop.IPCClient.SetupConnection", "hadoop.IPCClient.connectOnce", "HadoopException", 100)
	err := NewIPCClient(app).SetupConnection(ctx, "nn1")
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	injections := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection {
			injections++
		}
	}
	if injections != 5 {
		t.Errorf("injections = %d; the wrapper should burn every retry attempt", injections)
	}
}

// TestCallDoesNotRetryIllegalArgument shows the correct policy exclusion.
func TestCallDoesNotRetryIllegalArgument(t *testing.T) {
	app := New()
	ctx, run := injected("hadoop.IPCClient.Call", "hadoop.IPCClient.invokeRPC", "IllegalArgumentException", 100)
	_, err := NewIPCClient(app).Call(ctx, "nn1", "m")
	if err == nil {
		t.Fatal("expected immediate failure")
	}
	if !errmodel.IsClass(err, "IllegalArgumentException") {
		t.Errorf("err = %v", err)
	}
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection && e.Count > 1 {
			t.Error("IllegalArgumentException must not be retried")
		}
	}
}

// TestCopyRetriesBackToBack demonstrates the missing-delay bug.
func TestCopyRetriesBackToBack(t *testing.T) {
	app := New()
	app.Store.Put("file/src", "x")
	ctx, run := injected("hadoop.FSShell.CopyWithRetry", "hadoop.FSShell.copyOnce", "IOException", 2)
	if err := NewFSShell(app).CopyWithRetry(ctx, "src", "dst"); err != nil {
		t.Fatalf("copy should heal: %v", err)
	}
	for _, e := range run.Events() {
		if e.Kind == trace.KindSleep {
			t.Error("the bug is that no sleep separates attempts")
		}
	}
}

// TestTokenRenewLoopUnbounded demonstrates the missing-cap bug healing
// only because the fault stops.
func TestTokenRenewLoopUnbounded(t *testing.T) {
	app := New()
	ctx, run := injected("hadoop.TokenRenewer.RenewLoop", "hadoop.TokenRenewer.renewToken", "ServiceException", 150)
	NewTokenRenewer(app).RenewLoop(ctx, "tok")
	injections := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection {
			injections++
		}
	}
	if injections != 150 {
		t.Errorf("injections = %d; nothing bounds this loop except the fault healing", injections)
	}
}

// TestLaunchLoopExcludesExit verifies the majority ExitException policy.
func TestLaunchLoopExcludesExit(t *testing.T) {
	app := New()
	ctx, _ := injected("hadoop.ServiceLauncher.LaunchLoop", "hadoop.ServiceLauncher.launchOnce", "ExitException", 100)
	err := NewServiceLauncher(app).LaunchLoop(ctx, "svc")
	if err == nil || !errmodel.IsClass(err, "ExitException") {
		t.Errorf("err = %v, want immediate ExitException", err)
	}
}

// TestRunWithRetriesRetriesExit demonstrates the IF outlier: this loop
// retries ExitException against the codebase-wide policy.
func TestRunWithRetriesRetriesExit(t *testing.T) {
	app := New()
	ctx, run := injected("hadoop.ExitUtil.RunWithRetries", "hadoop.ExitUtil.runCommand", "ExitException", 2)
	if err := NewExitUtil(app).RunWithRetries(ctx, "fsck"); err != nil {
		t.Fatalf("should heal after 2 injections: %v", err)
	}
	injections := 0
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection {
			injections++
		}
	}
	if injections != 2 {
		t.Errorf("injections = %d; ExitException was supposed to be (wrongly) retried", injections)
	}
}

// TestConfigPushRequeues exercises the queue retry path under injection.
func TestConfigPushRequeues(t *testing.T) {
	app := New()
	p := NewConfigPusher(app)
	p.Submit("worker1")
	ctx, _ := injected("hadoop.ConfigPusher.processPush", "hadoop.ConfigPusher.pushOnce", "ConnectException", 3)
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if p.Pushed != 1 {
		t.Errorf("pushed = %d", p.Pushed)
	}
}
