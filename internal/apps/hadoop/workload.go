package hadoop

import (
	"context"

	"wasabi/internal/testkit"
)

// workloadTests are end-to-end scenario tests; each covers several retry
// locations the focused tests also reach (§3.1.4 planning redundancy).
func workloadTests() []testkit.Test {
	return []testkit.Test{
		{
			Name: "hadoop.TestClientSessionFlow", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				c := NewIPCClient(app)
				if err := c.SetupConnection(ctx, "nn1"); err != nil {
					return err
				}
				if _, err := c.Call(ctx, "nn1", "getStatus"); err != nil {
					return err
				}
				if _, err := c.Call(ctx, "nn1", "listDirs"); err != nil {
					return err
				}
				_, err := NewNameserviceFailover(app).Call(ctx, "renewLease")
				return err
			},
		},
		{
			Name: "hadoop.TestSecureJobFlow", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				NewTokenRenewer(app).RenewLoop(ctx, "flow-token")
				if _, err := NewKMSClient(app).Decrypt(ctx, 42); err != nil {
					return err
				}
				app.Store.Put("file/job.xml", "<conf/>")
				return NewFSShell(app).CopyWithRetry(ctx, "job.xml", "job-copy.xml")
			},
		},
		{
			Name: "hadoop.TestRolloutFlow", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				p := NewConfigPusher(app)
				for _, n := range []string{"nn1", "nn2", "worker1"} {
					p.Submit(n)
				}
				if err := p.Drain(ctx); err != nil {
					return err
				}
				if err := NewServiceLauncher(app).LaunchLoop(ctx, "shuffle"); err != nil {
					return err
				}
				rp := NewRPCProxy(app)
				for id := 0; id < 5; id++ {
					if err := rp.Invoke(ctx, id); err != nil {
						return err
					}
				}
				return testkit.Assertf(p.Pushed == 3, "pushed = %d", p.Pushed)
			},
		},
	}
}
