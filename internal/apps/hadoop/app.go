// Package hadoop is the corpus miniature of Hadoop Common (HA in the
// evaluation): the shared IPC client, shell utilities, token renewal, KMS
// client and service-launch plumbing the rest of the Hadoop stack builds
// on. It carries the unpatched HADOOP-16683 policy bug (a wrapped
// AccessControlException that IS retried) and the ExitException
// retry-ratio outlier (§2.2, §3.2.2; the HA rows of Tables 3–5).
//
// Ground truth lives in manifest.go; detectors never read it.
package hadoop

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/trace"
)

// App is a miniature Hadoop Common deployment: a service cluster plus
// shared configuration.
type App struct {
	Config  *common.Config
	Cluster *common.Cluster
	Store   *common.KV // shared service state: tokens, keys, groups
}

// New constructs a deployment with default configuration.
func New() *App {
	return &App{
		Config: common.NewConfig(map[string]string{
			"ipc.client.connect.max.retries":  "5",
			"ipc.client.connect.retry.delay":  "500ms",
			"fs.shell.copy.retries":           "4",
			"kms.client.failover.max.retries": "3",
			"service.launch.retries":          "3",
			"config.push.retries":             "4",
		}),
		Cluster: common.NewCluster("nn1", "nn2", "worker1"),
		Store:   common.NewKV(),
	}
}

// log emits an application log line into the run trace.
func (a *App) log(ctx context.Context, format string, args ...any) {
	trace.Note(ctx, "[hadoop] "+format, args...)
}
