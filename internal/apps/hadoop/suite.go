package hadoop

import (
	"context"
	"strconv"

	"wasabi/internal/errmodel"
	"wasabi/internal/testkit"
)

// Suite returns the Hadoop Common miniature's existing unit-test suite.
func Suite() testkit.Suite {
	s := testkit.Suite{App: "HA", Name: "Hadoop", Tests: []testkit.Test{
		{
			Name: "hadoop.TestIPCCall", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				out, err := NewIPCClient(app).Call(ctx, "nn1", "getStatus")
				if err != nil {
					return err
				}
				return testkit.Assertf(out == "getStatus@nn1", "out = %q", out)
			},
		},
		{
			Name: "hadoop.TestIPCCallRejectsEmptyMethod", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				_, err := NewIPCClient(app).Call(ctx, "nn1", "")
				if err == nil {
					return testkit.Assertf(false, "expected IllegalArgumentException")
				}
				if errmodel.IsClass(err, "IllegalArgumentException") {
					return nil
				}
				return err
			},
		},
		{
			Name: "hadoop.TestSetupConnection", App: "HA",
			RetryLabeled: true,
			// Developers capped connect retries to keep this test fast.
			Overrides: map[string]string{"ipc.client.connect.max.retries": "2"},
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				return NewIPCClient(app).SetupConnection(ctx, "nn1")
			},
		},
		{
			Name: "hadoop.TestNameserviceFailover", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Cluster.Node("nn1").SetDown(true)
				out, err := NewNameserviceFailover(app).Call(ctx, "renewLease")
				if err != nil {
					return err
				}
				return testkit.Assertf(out == "renewLease@nn2", "out = %q", out)
			},
		},
		{
			Name: "hadoop.TestRPCProxyManyRequests", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				p := NewRPCProxy(app)
				// The request harness tolerates individual failures; the
				// upper layer re-issues dropped requests later.
				ok := 0
				for id := 0; id < 40; id++ {
					if err := p.Invoke(ctx, id); err == nil {
						ok++
					}
				}
				return testkit.Assertf(ok > 0, "no request succeeded")
			},
		},
		{
			Name: "hadoop.TestShellCopy", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Store.Put("file/a.txt", "hello")
				if err := NewFSShell(app).CopyWithRetry(ctx, "a.txt", "b.txt"); err != nil {
					return err
				}
				v, _ := app.Store.Get("file/b.txt")
				return testkit.Assertf(v == "hello", "copy = %q", v)
			},
		},
		{
			Name: "hadoop.TestShellCopyMissingSource", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				err := NewFSShell(app).CopyWithRetry(ctx, "ghost", "b")
				if err == nil {
					return testkit.Assertf(false, "expected FileNotFoundException")
				}
				if errmodel.IsClass(err, "FileNotFoundException") {
					return nil
				}
				return err
			},
		},
		{
			Name: "hadoop.TestTokenRenewal", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				NewTokenRenewer(app).RenewLoop(ctx, "tok-1")
				v, _ := app.Store.Get("token/tok-1")
				return testkit.Assertf(v == "renewed", "token = %q", v)
			},
		},
		{
			Name: "hadoop.TestServiceLaunch", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewServiceLauncher(app).LaunchLoop(ctx, "historyserver"); err != nil {
					return err
				}
				v, _ := app.Store.Get("service/historyserver")
				return testkit.Assertf(v == "up", "service = %q", v)
			},
		},
		{
			Name: "hadoop.TestConfigPushAllNodes", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				p := NewConfigPusher(app)
				p.Submit("nn1")
				p.Submit("worker1")
				if err := p.Drain(ctx); err != nil {
					return err
				}
				return testkit.Assertf(p.Pushed == 2, "pushed = %d", p.Pushed)
			},
		},
		{
			Name: "hadoop.TestKMSDecrypt", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				plain, err := NewKMSClient(app).Decrypt(ctx, 7)
				if err != nil {
					return err
				}
				return testkit.Assertf(plain == "plain-"+strconv.Itoa(7), "plain = %q", plain)
			},
		},
		{
			Name: "hadoop.TestDiskChecker", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Store.Put("disk/d2", "bad")
				d := NewDiskChecker(app)
				d.CheckAll(ctx, []string{"d1", "d2", "d3"})
				return testkit.Assertf(len(d.Bad) == 1 && d.Bad[0] == "d2", "bad = %v", d.Bad)
			},
		},
		{
			Name: "hadoop.TestParseClientOptions", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				opts, err := ParseClientOptions("retries=7,retryDelay=2s")
				if err != nil {
					return err
				}
				if err := testkit.Assertf(opts.MaxRetries == 7, "retries = %d", opts.MaxRetries); err != nil {
					return err
				}
				_, err = ParseClientOptions("bogus")
				return testkit.Assertf(err != nil, "malformed options accepted")
			},
		},
		{
			Name: "hadoop.TestRetryPolicyDefinitions", App: "HA",
			RetryLabeled: true,
			Body: func(ctx context.Context, o map[string]string) error {
				p := RetryUpToMaximumCountWithFixedSleep(3, 0)
				calls := 0
				err := p.Do(ctx, func(context.Context) error {
					calls++
					if calls < 3 {
						return errmodel.New("ConnectException", "transient")
					}
					return nil
				})
				if err != nil {
					return err
				}
				return testkit.Assertf(calls == 3, "calls = %d", calls)
			},
		},
		{
			Name: "hadoop.TestSafemodePoll", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				return testkit.Assertf(WaitForSafemodeExit(ctx, app, 2), "safemode never cleared")
			},
		},
		{
			Name: "hadoop.TestMetricsPublisher", App: "HA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				m := NewMetricsPublisher(app)
				m.PublishRounds(ctx, 3)
				return testkit.Assertf(m.Published == 3, "published = %d", m.Published)
			},
		},
	}}
	s.Tests = append(s.Tests, workloadTests()...)
	return s
}
