package hadoop

import (
	"context"
	"strconv"
	"strings"
)

// Housekeeping chores of the Hadoop Common miniature: per-item iteration
// with error tolerance — structural retry look-alikes the retry-naming
// filter prunes (§4.4).

// TrashEmptier purges expired per-user trash checkpoints.
type TrashEmptier struct {
	app *App
	// Purged and Skipped count pass outcomes.
	Purged, Skipped int
}

// NewTrashEmptier returns an emptier.
func NewTrashEmptier(app *App) *TrashEmptier { return &TrashEmptier{app: app} }

// ageOf parses one checkpoint's age record.
func (t *TrashEmptier) ageOf(key string) (int, error) {
	v, _ := t.app.Store.Get(key)
	age, err := strconv.Atoi(v)
	if err != nil {
		return 0, &optionError{kv: key + "=" + v}
	}
	return age, nil
}

// EmptyOnce walks every checkpoint once, purging expired ones.
func (t *TrashEmptier) EmptyOnce(ctx context.Context) {
	for _, key := range t.app.Store.ListPrefix("checkpoint/") {
		age, err := t.ageOf(key)
		if err != nil {
			t.app.log(ctx, "emptier skipping %s: %v", key, err)
			t.Skipped++
			continue
		}
		if age < 1 {
			t.Skipped++
			continue
		}
		t.app.Store.Delete(key)
		t.Purged++
	}
}

// JMXCollector reads management beans from every service node.
type JMXCollector struct {
	app *App
	// Samples maps node name to its bean count; Missing counts dead nodes.
	Samples map[string]int
	Missing int
}

// NewJMXCollector returns a collector.
func NewJMXCollector(app *App) *JMXCollector {
	return &JMXCollector{app: app, Samples: make(map[string]int)}
}

// read samples one node's beans.
func (j *JMXCollector) read(name string) (int, error) {
	n := j.app.Cluster.Node(name)
	if n == nil || n.Down() {
		return 0, &optionError{kv: "jmx@" + name}
	}
	return n.Store.Len(), nil
}

// CollectOnce reads every node once, skipping unreachable ones.
func (j *JMXCollector) CollectOnce(ctx context.Context) {
	for _, node := range j.app.Cluster.Nodes() {
		n, err := j.read(node.Name)
		if err != nil {
			j.app.log(ctx, "jmx read failed: %v", err)
			j.Missing++
			continue
		}
		j.Samples[node.Name] = n
	}
}

// TokenSweeper cancels expired delegation tokens.
type TokenSweeper struct {
	app *App
	// Cancelled counts removed tokens.
	Cancelled int
}

// NewTokenSweeper returns a sweeper.
func NewTokenSweeper(app *App) *TokenSweeper { return &TokenSweeper{app: app} }

// expired parses one token's expiry record.
func (t *TokenSweeper) expired(key string) (bool, error) {
	v, _ := t.app.Store.Get(key)
	if v == "renewed" {
		return false, nil
	}
	left, err := strconv.Atoi(v)
	if err != nil {
		return false, &optionError{kv: key + "=" + v}
	}
	return left <= 0, nil
}

// SweepOnce walks every token once.
func (t *TokenSweeper) SweepOnce(ctx context.Context) {
	for _, key := range t.app.Store.ListPrefix("token/") {
		old, err := t.expired(key)
		if err != nil {
			t.app.log(ctx, "sweeper skipping %s: %v", key, err)
			continue
		}
		if old {
			t.app.Store.Delete(key)
			t.Cancelled++
		}
	}
}

// CredentialValidator checks stored credential aliases.
type CredentialValidator struct {
	app *App
	// Broken lists aliases that fail validation.
	Broken []string
}

// NewCredentialValidator returns a validator.
func NewCredentialValidator(app *App) *CredentialValidator { return &CredentialValidator{app: app} }

// validate checks one credential alias.
func (c *CredentialValidator) validate(key string) error {
	v, _ := c.app.Store.Get(key)
	if len(v) < 8 {
		return &optionError{kv: key + " too short"}
	}
	if strings.ContainsAny(v, " \t") {
		return &optionError{kv: key + " contains whitespace"}
	}
	return nil
}

// ValidateOnce walks every alias once.
func (c *CredentialValidator) ValidateOnce(ctx context.Context) {
	for _, key := range c.app.Store.ListPrefix("cred/") {
		if err := c.validate(key); err != nil {
			c.app.log(ctx, "credential invalid: %v", err)
			c.Broken = append(c.Broken, key)
			continue
		}
	}
}

// TopologyResolver maps hosts to racks from the topology table.
type TopologyResolver struct {
	app *App
	// Resolved maps host to rack; Unknown counts unmapped hosts.
	Resolved map[string]string
	Unknown  int
}

// NewTopologyResolver returns a resolver.
func NewTopologyResolver(app *App) *TopologyResolver {
	return &TopologyResolver{app: app, Resolved: make(map[string]string)}
}

// rackOf looks up one host's rack.
func (t *TopologyResolver) rackOf(host string) (string, error) {
	rack, ok := t.app.Store.Get("rack/" + host)
	if !ok {
		return "", &optionError{kv: "no rack for " + host}
	}
	return rack, nil
}

// ResolveAll resolves a host list once, tolerating unmapped hosts.
func (t *TopologyResolver) ResolveAll(ctx context.Context, hosts []string) {
	for _, h := range hosts {
		rack, err := t.rackOf(h)
		if err != nil {
			t.app.log(ctx, "topology: %v", err)
			t.Unknown++
			continue
		}
		t.Resolved[h] = rack
	}
}

// AuditScrubber redacts secrets from audit log entries.
type AuditScrubber struct {
	app *App
	// Scrubbed and Malformed count pass outcomes.
	Scrubbed, Malformed int
}

// NewAuditScrubber returns a scrubber.
func NewAuditScrubber(app *App) *AuditScrubber { return &AuditScrubber{app: app} }

// scrub rewrites one audit entry.
func (a *AuditScrubber) scrub(key string) error {
	v, _ := a.app.Store.Get(key)
	if !strings.Contains(v, "|") {
		return &optionError{kv: key + " malformed"}
	}
	parts := strings.SplitN(v, "|", 2)
	a.app.Store.Put(key, parts[0]+"|<redacted>")
	return nil
}

// ScrubOnce walks every audit entry once.
func (a *AuditScrubber) ScrubOnce(ctx context.Context) {
	for _, key := range a.app.Store.ListPrefix("audit/") {
		if err := a.scrub(key); err != nil {
			a.app.log(ctx, "audit scrub: %v", err)
			a.Malformed++
			continue
		}
		a.Scrubbed++
	}
}
