package mapreduce

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/testkit"
)

// workloadTests are end-to-end scenario tests; each covers several retry
// locations the focused tests also reach (§3.1.4 planning redundancy).
func workloadTests() []testkit.Test {
	return []testkit.Test{
		{
			Name: "mapreduce.TestJobEndToEndFlow", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewJobClient(app).Submit(ctx, "sort"); err != nil {
					return err
				}
				s := NewTaskAttemptScheduler(app)
				s.Submit("sort-m-0")
				s.Submit("sort-m-1")
				if err := s.Drain(ctx); err != nil {
					return err
				}
				if _, err := NewShuffleFetcher(app).FetchMapOutput(ctx, 0); err != nil {
					return err
				}
				return NewOutputCommitter(app).CommitWithRetry(ctx, "sort")
			},
		},
		{
			Name: "mapreduce.TestContainerLaunchFlow", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				exec := common.NewProcedureExecutor()
				if err := exec.Run(ctx, NewTaskLauncherProc(app, "flow-r-0")); err != nil {
					return err
				}
				dir, err := NewLocalDirAllocator(app).PickDir(ctx)
				if err != nil {
					return err
				}
				return testkit.Assertf(dir != "", "no spill dir")
			},
		},
		{
			Name: "mapreduce.TestShuffleHeavyFlow", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				f := NewShuffleFetcher(app)
				for mapID := 0; mapID < 6; mapID++ {
					if _, err := f.FetchMapOutput(ctx, mapID); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}
