package mapreduce

import "wasabi/internal/apps/meta"

// Manifest is the ground-truth record of every retry code structure in
// this package; detectors never read it.
func Manifest() []meta.Structure {
	return []meta.Structure{
		{
			App: "MA", Coordinator: "mapreduce.TaskAttemptScheduler.processAttempt",
			Retried: []string{"mapreduce.TaskAttemptScheduler.launchAttempt"},
			File:    "tasks.go", Mechanism: meta.Queue, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: failed attempts re-enqueued with no pause before re-dispatch",
		},
		{
			App: "MA", Coordinator: "mapreduce.ShuffleFetcher.FetchMapOutput",
			Retried: []string{"mapreduce.ShuffleFetcher.fetchOutput"},
			File:    "tasks.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, Bug: meta.MissingDelay,
			Note: "WHEN: shuffle fetches re-attempted back to back against the same host",
		},
		{
			App: "MA", Coordinator: "mapreduce.JobClient.Submit",
			Retried: []string{"mapreduce.JobClient.submitOnce"},
			File:    "tasks.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct: cap + delay, IllegalArgumentException excluded",
		},
		{
			App: "MA", Coordinator: "mapreduce.OutputCommitter.CommitWithRetry",
			Retried: []string{"mapreduce.OutputCommitter.commitOnce"},
			File:    "tasks.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct; FileNotFoundException handled through a boolean flag, which the ratio analysis cannot track (its one IF FP, §4.3)",
		},
		{
			App: "MA", Coordinator: "mapreduce.SpeculativeScheduler.Drain",
			File: "jobs.go", Mechanism: meta.Queue, Trigger: meta.ErrorCode,
			Keyworded: true,
			Note:      "correct error-code-triggered re-queue; uninjectable (§4.2)",
		},
		{
			App: "MA", Coordinator: "mapreduce.HistoryLoader.LoadJob",
			Retried: []string{"mapreduce.HistoryLoader.loadRecord"},
			File:    "jobs.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: false, Bug: meta.MissingDelay,
			Note: "WHEN: back-to-back re-reads; counter named 'tries' (CodeQL keyword miss); uncovered by the suite",
		},
		{
			App: "MA", Coordinator: "mapreduce.TaskLauncherProc.Step",
			Retried: []string{"mapreduce.TaskLauncherProc.allocateContainer", "mapreduce.TaskLauncherProc.startTask"},
			File:    "jobs.go", Mechanism: meta.StateMachine, Trigger: meta.Exception,
			Keyworded: true,
			Note:      "correct state-machine retry: backoff + cap per state",
		},
		{
			App: "MA", Coordinator: "mapreduce.LocalDirAllocator.PickDir",
			Retried: []string{"mapreduce.LocalDirAllocator.probeDir"},
			File:    "jobs.go", Mechanism: meta.Loop, Trigger: meta.Exception,
			Keyworded: true, DelayUnneeded: true,
			Note: "no pause, but each attempt probes a different disk (missing-delay FP source)",
		},
	}
}
