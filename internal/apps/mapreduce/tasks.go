package mapreduce

import (
	"context"
	"strconv"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// attempt is a queued task attempt with its own retry budget.
type attempt struct {
	task    string
	retries int
}

// TaskAttemptScheduler launches task attempts from a queue; failed
// attempts are re-enqueued — asynchronous queue retry (§2.5).
type TaskAttemptScheduler struct {
	app   *App
	queue *common.Queue[*attempt]
	// Completed counts finished tasks.
	Completed int
}

// NewTaskAttemptScheduler returns a scheduler with an empty queue.
func NewTaskAttemptScheduler(app *App) *TaskAttemptScheduler {
	return &TaskAttemptScheduler{app: app, queue: common.NewQueue[*attempt]()}
}

// Submit enqueues a task.
func (s *TaskAttemptScheduler) Submit(task string) {
	s.queue.Put(&attempt{task: task})
}

// launchAttempt runs one attempt on a node manager.
//
// Throws: ConnectException, RemoteException.
func (s *TaskAttemptScheduler) launchAttempt(ctx context.Context, task string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	return s.app.Cluster.Call(ctx, "nm1", func(n *common.Node) error {
		n.Store.Put("attempt/"+task, "done")
		return nil
	})
}

// processAttempt runs one queued attempt and decides what to do on
// failure: re-submit for retry while budget remains, otherwise fail the
// task. The retry decision lives in this plain handler — no loop anywhere.
//
// BUG (WHEN, missing delay): the attempt is re-enqueued immediately; the
// scheduler re-dispatches it in the same scheduling round, hammering the
// node manager while the transient condition persists.
func (s *TaskAttemptScheduler) processAttempt(ctx context.Context, a *attempt) error {
	maxRetries := s.app.Config.GetInt("mapreduce.task.attempt.retries", 4)
	if err := s.launchAttempt(ctx, a.task); err != nil {
		if a.retries < maxRetries {
			a.retries++
			s.queue.Put(a) // re-submit for retry, no pause
			return nil
		}
		return err
	}
	s.Completed++
	return nil
}

// Drain runs queued attempts until the queue is empty.
func (s *TaskAttemptScheduler) Drain(ctx context.Context) error {
	for {
		a, ok := s.queue.Take()
		if !ok {
			return nil
		}
		if err := s.processAttempt(ctx, a); err != nil {
			return err
		}
	}
}

// ShuffleFetcher copies map outputs to reducers.
type ShuffleFetcher struct {
	app *App
}

// NewShuffleFetcher returns a fetcher.
func NewShuffleFetcher(app *App) *ShuffleFetcher { return &ShuffleFetcher{app: app} }

// fetchOutput copies one map output segment.
//
// Throws: SocketTimeoutException, EOFException.
func (f *ShuffleFetcher) fetchOutput(ctx context.Context, mapID int) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	vclock.Elapse(ctx, time.Millisecond)
	return "segment-" + strconv.Itoa(mapID), nil
}

// FetchMapOutput copies a map output, re-attempting transient fetch
// failures up to the configured cap.
//
// BUG (WHEN, missing delay): fetch attempts are issued back to back
// against the same mapper host.
func (f *ShuffleFetcher) FetchMapOutput(ctx context.Context, mapID int) (string, error) {
	maxRetries := f.app.Config.GetInt("mapreduce.shuffle.fetch.retries", 5)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		seg, err := f.fetchOutput(ctx, mapID)
		if err == nil {
			return seg, nil
		}
		last = err
	}
	return "", last
}

// JobClient submits jobs to the resource manager.
type JobClient struct {
	app *App
}

// NewJobClient returns a client.
func NewJobClient(app *App) *JobClient { return &JobClient{app: app} }

// submitOnce performs one submission RPC.
//
// Throws: ConnectException, IllegalArgumentException.
func (c *JobClient) submitOnce(ctx context.Context, job string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	if job == "" {
		return errmodel.New("IllegalArgumentException", "empty job name")
	}
	c.app.Jobs.Put("job/"+job, "SUBMITTED")
	return nil
}

// Submit submits a job with bounded, delayed retry. A malformed job is
// the caller's mistake and aborts immediately.
func (c *JobClient) Submit(ctx context.Context, job string) error {
	maxRetries := c.app.Config.GetInt("mapreduce.jobclient.retries", 3)
	var last error
	for retry := 0; retry < maxRetries; retry++ {
		err := c.submitOnce(ctx, job)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "IllegalArgumentException") {
			return err
		}
		last = err
		vclock.Sleep(ctx, 250*time.Millisecond)
	}
	return last
}

// OutputCommitter finalizes job output directories.
type OutputCommitter struct {
	app *App
}

// NewOutputCommitter returns a committer.
func NewOutputCommitter(app *App) *OutputCommitter { return &OutputCommitter{app: app} }

// commitOnce promotes the temporary output directory.
//
// Throws: IOException, FileNotFoundException.
func (c *OutputCommitter) commitOnce(ctx context.Context, job string) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	c.app.Jobs.Put("output/"+job, "committed")
	return nil
}

// CommitWithRetry promotes job output, retrying transient I/O failures.
// A missing output directory is final — but the decision flows through an
// auxiliary boolean rather than an early return, which is precisely the
// control-flow shape the paper's ratio analysis fails to track, yielding
// its one IF false positive ("FileNotFoundException retried in 1/4
// cases", §4.3).
func (c *OutputCommitter) CommitWithRetry(ctx context.Context, job string) error {
	maxRetries := c.app.Config.GetInt("mapreduce.committer.retries", 4)
	var last error
	missingOutput := false
	for retry := 0; retry < maxRetries; retry++ {
		err := c.commitOnce(ctx, job)
		if err == nil {
			return nil
		}
		if errmodel.IsClass(err, "FileNotFoundException") {
			missingOutput = true
		}
		if missingOutput {
			break
		}
		last = err
		vclock.Sleep(ctx, 200*time.Millisecond)
	}
	if missingOutput {
		return errmodel.Newf("FileNotFoundException", "output of %s vanished", job)
	}
	return last
}
