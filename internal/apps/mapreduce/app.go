// Package mapreduce is the corpus miniature of Hadoop MapReduce (MA in
// the evaluation): job submission, task attempts, the shuffle, and output
// commit. Its ground-truth bugs skew toward missing-delay re-enqueueing
// (Table 3's MA row is delay-only), and it hosts the boolean-flag
// control-flow pattern that produces the paper's single IF-analysis false
// positive (FileNotFoundException "retried" in 1/4 loops, §4.3).
//
// Ground truth lives in manifest.go; detectors never read it.
package mapreduce

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/trace"
)

// App is a miniature MapReduce deployment: an application master, two
// node managers, and job state.
type App struct {
	Config  *common.Config
	Cluster *common.Cluster
	Jobs    *common.KV // job and attempt state
}

// New constructs a deployment with default configuration.
func New() *App {
	return &App{
		Config: common.NewConfig(map[string]string{
			"mapreduce.task.attempt.retries":    "4",
			"mapreduce.shuffle.fetch.retries":   "5",
			"mapreduce.jobclient.retries":       "3",
			"mapreduce.committer.retries":       "4",
			"mapreduce.am.register.retries":     "3",
			"mapreduce.speculative.max.requeue": "2",
		}),
		Cluster: common.NewCluster("nm1", "nm2"),
		Jobs:    common.NewKV(),
	}
}

// log emits an application log line into the run trace.
func (a *App) log(ctx context.Context, format string, args ...any) {
	trace.Note(ctx, "[mapreduce] "+format, args...)
}
