package mapreduce

import (
	"context"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/testkit"
)

// Suite returns the MapReduce miniature's existing unit-test suite.
func Suite() testkit.Suite {
	s := testkit.Suite{App: "MA", Name: "MapReduce", Tests: []testkit.Test{
		{
			Name: "mapreduce.TestTaskAttemptsComplete", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				s := NewTaskAttemptScheduler(app)
				s.Submit("m-0")
				s.Submit("m-1")
				if err := s.Drain(ctx); err != nil {
					return err
				}
				return testkit.Assertf(s.Completed == 2, "completed = %d", s.Completed)
			},
		},
		{
			Name: "mapreduce.TestShuffleFetch", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				seg, err := NewShuffleFetcher(app).FetchMapOutput(ctx, 3)
				if err != nil {
					return err
				}
				return testkit.Assertf(seg == "segment-3", "segment = %q", seg)
			},
		},
		{
			Name: "mapreduce.TestJobSubmit", App: "MA",
			RetryLabeled: true,
			Overrides:    map[string]string{"mapreduce.jobclient.retries": "1"},
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewJobClient(app).Submit(ctx, "wordcount"); err != nil {
					return err
				}
				v, _ := app.Jobs.Get("job/wordcount")
				return testkit.Assertf(v == "SUBMITTED", "job = %q", v)
			},
		},
		{
			Name: "mapreduce.TestJobSubmitRejectsEmpty", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				err := NewJobClient(app).Submit(ctx, "")
				if err == nil {
					return testkit.Assertf(false, "expected IllegalArgumentException")
				}
				if errmodel.IsClass(err, "IllegalArgumentException") {
					return nil
				}
				return err
			},
		},
		{
			Name: "mapreduce.TestCommitOutput", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				if err := NewOutputCommitter(app).CommitWithRetry(ctx, "j1"); err != nil {
					return err
				}
				v, _ := app.Jobs.Get("output/j1")
				return testkit.Assertf(v == "committed", "output = %q", v)
			},
		},
		{
			Name: "mapreduce.TestSpeculativeRequeue", App: "MA",
			RetryLabeled: true,
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				s := NewSpeculativeScheduler(app)
				calls := map[string]int{}
				s.SetStatusSource(func(id string) string {
					calls[id]++
					if id == "slow-1" && calls[id] == 1 {
						return "BUSY_NODE"
					}
					if id == "stale-1" {
						return "STALE"
					}
					return "LAUNCHED"
				})
				s.Enqueue("slow-1")
				s.Enqueue("stale-1")
				s.Drain(ctx)
				if err := testkit.Assertf(s.Relaunched == 1, "relaunched = %d", s.Relaunched); err != nil {
					return err
				}
				return testkit.Assertf(len(s.Dropped) == 1, "dropped = %v", s.Dropped)
			},
		},
		{
			Name: "mapreduce.TestTaskLauncherProcedure", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				exec := common.NewProcedureExecutor()
				if err := exec.Run(ctx, NewTaskLauncherProc(app, "r-0")); err != nil {
					return err
				}
				v, _ := app.Jobs.Get("running/r-0")
				return testkit.Assertf(v == "true", "task not running")
			},
		},
		{
			Name: "mapreduce.TestPickDirSkipsFullDisk", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Jobs.Put("disk0", "full")
				dir, err := NewLocalDirAllocator(app).PickDir(ctx)
				if err != nil {
					return err
				}
				return testkit.Assertf(dir == "/disk2", "dir = %q", dir)
			},
		},
		{
			Name: "mapreduce.TestInputSplitter", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Jobs.Put("input/bad.gz", "unreadable")
				s := NewInputSplitter(app)
				s.ComputeSplits(ctx, []string{"a.txt", "bad.gz", "c.txt"})
				return testkit.Assertf(s.Splits == 2 && s.Skipped == 1, "splits=%d skipped=%d", s.Splits, s.Skipped)
			},
		},
		{
			Name: "mapreduce.TestParseCounters", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				c, err := ParseCounters("maps=3,reduces=1")
				if err != nil {
					return err
				}
				if err := testkit.Assertf(c["maps"] == 3, "maps = %d", c["maps"]); err != nil {
					return err
				}
				_, err = ParseCounters("oops")
				return testkit.Assertf(err != nil, "malformed counters accepted")
			},
		},
		{
			Name: "mapreduce.TestProgressPoller", App: "MA",
			Body: func(ctx context.Context, o map[string]string) error {
				app := New()
				app.Config.ApplyOverrides(o)
				app.Jobs.Put("progress/j2", "80")
				ok := NewProgressPoller(app).WaitForProgress(ctx, "j2", 50, 2)
				return testkit.Assertf(ok, "progress never reached")
			},
		},
	}}
	s.Tests = append(s.Tests, workloadTests()...)
	return s
}
