package mapreduce

import (
	"context"
	"strconv"
	"strings"
	"time"

	"wasabi/internal/vclock"
)

// Non-retry MapReduce code: split computation, counter parsing, and
// progress polling — retry look-alikes for the ablation and Q4 prompts.

// InputSplitter partitions input files into map splits.
type InputSplitter struct {
	app *App
	// Splits counts produced splits; Skipped counts unreadable files.
	Splits, Skipped int
}

// NewInputSplitter returns a splitter.
func NewInputSplitter(app *App) *InputSplitter { return &InputSplitter{app: app} }

// ComputeSplits walks the input files once, skipping unreadable ones —
// per-item tolerance, never re-execution.
func (s *InputSplitter) ComputeSplits(ctx context.Context, files []string) {
	for _, f := range files {
		if v, _ := s.app.Jobs.Get("input/" + f); v == "unreadable" {
			s.app.log(ctx, "skipping unreadable input %s", f)
			s.Skipped++
			continue
		}
		s.Splits++
	}
}

// ParseCounters parses "name=value" counter dumps, reporting the first
// malformed entry.
func ParseCounters(dump string) (map[string]int, error) {
	out := make(map[string]int)
	if dump == "" {
		return out, nil
	}
	for _, kv := range strings.Split(dump, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return nil, &counterError{kv: kv}
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, &counterError{kv: kv}
		}
		out[parts[0]] = n
	}
	return out, nil
}

type counterError struct{ kv string }

func (e *counterError) Error() string { return "bad counter " + e.kv }

// ProgressPoller waits for a job to reach a progress threshold.
type ProgressPoller struct {
	app *App
}

// NewProgressPoller returns a poller.
func NewProgressPoller(app *App) *ProgressPoller { return &ProgressPoller{app: app} }

// WaitForProgress polls job progress until it reaches pct or the poll
// budget runs out — status polling, not retry.
func (p *ProgressPoller) WaitForProgress(ctx context.Context, job string, pct, polls int) bool {
	for i := 0; i < polls; i++ {
		v, _ := p.app.Jobs.Get("progress/" + job)
		cur, _ := strconv.Atoi(v)
		if cur >= pct {
			return true
		}
		vclock.Sleep(ctx, 500*time.Millisecond)
	}
	return false
}
