package mapreduce

import (
	"context"
	"testing"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/trace"
)

func injected(coordinator, retried, exc string, k int) (context.Context, *trace.Run) {
	in := fault.NewInjector([]fault.Rule{{
		Loc: fault.Location{Coordinator: coordinator, Retried: retried, Exception: exc},
		K:   k,
	}})
	run := trace.NewRun("t")
	return fault.With(trace.With(context.Background(), run), in), run
}

// TestAttemptRequeuedWithoutPause demonstrates the missing-delay bug in
// the attempt scheduler's re-enqueue path.
func TestAttemptRequeuedWithoutPause(t *testing.T) {
	app := New()
	s := NewTaskAttemptScheduler(app)
	s.Submit("m-0")
	ctx, run := injected("mapreduce.TaskAttemptScheduler.processAttempt",
		"mapreduce.TaskAttemptScheduler.launchAttempt", "ConnectException", 3)
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain should heal: %v", err)
	}
	if s.Completed != 1 {
		t.Errorf("completed = %d", s.Completed)
	}
	injections, sleeps := 0, 0
	for _, e := range run.Events() {
		switch e.Kind {
		case trace.KindInjection:
			injections++
		case trace.KindSleep:
			sleeps++
		}
	}
	if injections != 3 {
		t.Errorf("injections = %d", injections)
	}
	if sleeps != 0 {
		t.Errorf("sleeps = %d; re-enqueue happens with no pause", sleeps)
	}
}

// TestAttemptBudgetExhausted verifies the per-attempt cap holds.
func TestAttemptBudgetExhausted(t *testing.T) {
	app := New()
	s := NewTaskAttemptScheduler(app)
	s.Submit("m-1")
	ctx, _ := injected("mapreduce.TaskAttemptScheduler.processAttempt",
		"mapreduce.TaskAttemptScheduler.launchAttempt", "ConnectException", 100)
	err := s.Drain(ctx)
	if err == nil {
		t.Fatal("expected exhaustion after the per-task budget")
	}
	if !errmodel.IsClass(err, "ConnectException") {
		t.Errorf("err = %v", err)
	}
}

// TestCommitFNFFlagBreaksLoop verifies the boolean-flag control flow: a
// FileNotFoundException stops the retry immediately despite the loop
// having budget left.
func TestCommitFNFFlagBreaksLoop(t *testing.T) {
	app := New()
	ctx, run := injected("mapreduce.OutputCommitter.CommitWithRetry",
		"mapreduce.OutputCommitter.commitOnce", "FileNotFoundException", 100)
	err := NewOutputCommitter(app).CommitWithRetry(ctx, "j1")
	if err == nil || !errmodel.IsClass(err, "FileNotFoundException") {
		t.Fatalf("err = %v", err)
	}
	for _, e := range run.Events() {
		if e.Kind == trace.KindInjection && e.Count > 1 {
			t.Error("FileNotFoundException must not actually be retried")
		}
	}
}

// TestShuffleHealsBackToBack shows the fetch loop healing with no sleeps.
func TestShuffleHealsBackToBack(t *testing.T) {
	app := New()
	ctx, run := injected("mapreduce.ShuffleFetcher.FetchMapOutput",
		"mapreduce.ShuffleFetcher.fetchOutput", "SocketTimeoutException", 2)
	seg, err := NewShuffleFetcher(app).FetchMapOutput(ctx, 1)
	if err != nil || seg != "segment-1" {
		t.Fatalf("fetch = %q, %v", seg, err)
	}
	for _, e := range run.Events() {
		if e.Kind == trace.KindSleep {
			t.Error("no sleep expected (that is the bug)")
		}
	}
}
