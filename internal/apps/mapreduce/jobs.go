package mapreduce

import (
	"context"
	"strconv"
	"time"

	"wasabi/internal/apps/common"
	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/vclock"
)

// slowTask is a speculative-execution work item carrying a status code.
type slowTask struct {
	id       string
	requeues int
}

// Speculative-execution status codes.
const (
	specLaunched = "LAUNCHED"
	specBusyNode = "BUSY_NODE"
	specStale    = "STALE"
)

// SpeculativeScheduler relaunches slow task attempts on other nodes. Its
// outcomes are *status codes*, not exceptions: BUSY_NODE items are retried
// by re-queueing, STALE items are dropped — error-code-triggered retry,
// uninjectable by WASABI (§4.2).
type SpeculativeScheduler struct {
	app     *App
	queue   *common.Queue[*slowTask]
	statusF func(id string) string
	// Relaunched counts successfully relaunched attempts.
	Relaunched int
	// Dropped lists abandoned items.
	Dropped []string
}

// NewSpeculativeScheduler returns a scheduler whose status source always
// reports success; tests replace statusF.
func NewSpeculativeScheduler(app *App) *SpeculativeScheduler {
	return &SpeculativeScheduler{
		app:     app,
		queue:   common.NewQueue[*slowTask](),
		statusF: func(string) string { return specLaunched },
	}
}

// SetStatusSource replaces the launch status source.
func (s *SpeculativeScheduler) SetStatusSource(f func(string) string) { s.statusF = f }

// Enqueue adds a slow task for speculative relaunch.
func (s *SpeculativeScheduler) Enqueue(id string) {
	s.queue.Put(&slowTask{id: id})
}

// Drain processes the speculation queue: BUSY_NODE outcomes re-queue the
// item up to the configured budget, STALE outcomes abandon it.
func (s *SpeculativeScheduler) Drain(ctx context.Context) {
	maxRequeue := s.app.Config.GetInt("mapreduce.speculative.max.requeue", 2)
	for {
		item, ok := s.queue.Take()
		if !ok {
			return
		}
		switch status := s.statusF(item.id); status {
		case specLaunched:
			s.Relaunched++
		case specBusyNode:
			if item.requeues < maxRequeue {
				item.requeues++
				vclock.Sleep(ctx, 100*time.Millisecond)
				s.queue.Put(item)
				continue
			}
			s.Dropped = append(s.Dropped, item.id)
		case specStale:
			s.Dropped = append(s.Dropped, item.id)
		}
	}
}

// HistoryLoader reads finished-job records from the history server.
type HistoryLoader struct {
	app *App
}

// NewHistoryLoader returns a loader.
func NewHistoryLoader(app *App) *HistoryLoader { return &HistoryLoader{app: app} }

// loadRecord reads one job history record.
//
// Throws: SocketTimeoutException.
func (h *HistoryLoader) loadRecord(ctx context.Context, job string) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	if v, ok := h.app.Jobs.Get("history/" + job); ok {
		return v, nil
	}
	return "", errmodel.Newf("FileNotFoundException", "no history for %s", job)
}

// LoadJob reads a job record, re-attempting transient history-server
// hiccups.
//
// BUG (WHEN, missing delay): re-attempts go out back to back, and the
// counter is named "tries", so keyword-filtered structural analysis does
// not see the loop — only fuzzy comprehension does.
func (h *HistoryLoader) LoadJob(ctx context.Context, job string) (string, error) {
	const maxTries = 4
	var last error
	for tries := 0; tries < maxTries; tries++ {
		rec, err := h.loadRecord(ctx, job)
		if err == nil {
			return rec, nil
		}
		if errmodel.IsClass(err, "FileNotFoundException") {
			return "", err
		}
		last = err
	}
	return "", last
}

// Launcher procedure states.
const (
	launchAllocate = iota
	launchStart
	launchDone
)

// TaskLauncherProc allocates a container and starts a task as a
// state-machine procedure — correct retry: backoff + cap per state.
type TaskLauncherProc struct {
	app      *App
	task     string
	state    int
	attempts int
}

// NewTaskLauncherProc returns a launcher procedure for task.
func NewTaskLauncherProc(app *App, task string) *TaskLauncherProc {
	return &TaskLauncherProc{app: app, task: task}
}

// Name implements common.Procedure.
func (p *TaskLauncherProc) Name() string { return "launch-" + p.task }

// allocateContainer reserves a container on a node manager.
//
// Throws: RemoteException.
func (p *TaskLauncherProc) allocateContainer(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	p.app.Jobs.Put("container/"+p.task, "nm1")
	return nil
}

// startTask starts the task inside its container.
//
// Throws: ConnectException.
func (p *TaskLauncherProc) startTask(ctx context.Context) error {
	if err := fault.Hook(ctx); err != nil {
		return err
	}
	p.app.Jobs.Put("running/"+p.task, "true")
	return nil
}

// Step implements common.Procedure.
func (p *TaskLauncherProc) Step(ctx context.Context) (bool, error) {
	const maxRetryAttempts = 5
	retryStep := func(err error) (bool, error) {
		p.attempts++
		if p.attempts >= maxRetryAttempts {
			return false, err
		}
		vclock.Sleep(ctx, vclock.Backoff(100*time.Millisecond, p.attempts-1, time.Second))
		return false, nil
	}
	switch p.state {
	case launchAllocate:
		if err := p.allocateContainer(ctx); err != nil {
			return retryStep(err)
		}
		p.state, p.attempts = launchStart, 0
	case launchStart:
		if err := p.startTask(ctx); err != nil {
			return retryStep(err)
		}
		p.state = launchDone
	case launchDone:
		return true, nil
	}
	return p.state == launchDone, nil
}

// LocalDirAllocator picks a healthy local directory for spill files.
type LocalDirAllocator struct {
	app  *App
	dirs []string
}

// NewLocalDirAllocator returns an allocator over the standard spill dirs.
func NewLocalDirAllocator(app *App) *LocalDirAllocator {
	return &LocalDirAllocator{app: app, dirs: []string{"/disk1", "/disk2", "/disk3"}}
}

// probeDir checks that the directory at index idx is writable.
//
// Throws: IOException.
func (l *LocalDirAllocator) probeDir(ctx context.Context, idx int) (string, error) {
	if err := fault.Hook(ctx); err != nil {
		return "", err
	}
	if v, _ := l.app.Jobs.Get("disk" + strconv.Itoa(idx)); v == "full" {
		return "", errmodel.Newf("IOException", "disk %d full", idx)
	}
	return l.dirs[idx], nil
}

// PickDir returns the first writable directory, moving to the next disk
// on failure — no pause on purpose, since every retry probes a different
// disk (the missing-delay FP shape).
func (l *LocalDirAllocator) PickDir(ctx context.Context) (string, error) {
	var last error
	for retry := 0; retry < len(l.dirs); retry++ {
		dir, err := l.probeDir(ctx, retry)
		if err == nil {
			return dir, nil
		}
		last = err
	}
	return "", last
}
