package mapreduce

import (
	"context"
	"strconv"
	"strings"
)

// Housekeeping chores of the MapReduce miniature: per-item iteration with
// error tolerance — structural retry look-alikes the retry-naming filter
// prunes (§4.4).

// HistoryCleaner deletes finished-job records past retention.
type HistoryCleaner struct {
	app *App
	// Deleted and Kept count pass outcomes.
	Deleted, Kept int
}

// NewHistoryCleaner returns a cleaner.
func NewHistoryCleaner(app *App) *HistoryCleaner { return &HistoryCleaner{app: app} }

// ageOf parses one record's age.
func (h *HistoryCleaner) ageOf(key string) (int, error) {
	v, _ := h.app.Jobs.Get(key)
	age, err := strconv.Atoi(v)
	if err != nil {
		return 0, &counterError{kv: key + "=" + v}
	}
	return age, nil
}

// CleanOnce walks every history record once.
func (h *HistoryCleaner) CleanOnce(ctx context.Context) {
	for _, key := range h.app.Jobs.ListPrefix("historyage/") {
		age, err := h.ageOf(key)
		if err != nil {
			h.app.log(ctx, "history cleaner skipping %s: %v", key, err)
			h.Kept++
			continue
		}
		if age <= 30 {
			h.Kept++
			continue
		}
		h.app.Jobs.Delete(key)
		h.Deleted++
	}
}

// StagingPurger removes abandoned staging directories.
type StagingPurger struct {
	app *App
	// Purged counts removed directories; Active counts live ones.
	Purged, Active int
}

// NewStagingPurger returns a purger.
func NewStagingPurger(app *App) *StagingPurger { return &StagingPurger{app: app} }

// abandoned reports whether one staging dir's owning job is gone.
func (s *StagingPurger) abandoned(key string) (bool, error) {
	job, ok := s.app.Jobs.Get(key)
	if !ok {
		return false, &counterError{kv: key + " has no owner"}
	}
	return !s.app.Jobs.Exists("job/" + job), nil
}

// PurgeOnce walks every staging dir once.
func (s *StagingPurger) PurgeOnce(ctx context.Context) {
	for _, key := range s.app.Jobs.ListPrefix("staging/") {
		orphan, err := s.abandoned(key)
		if err != nil {
			s.app.log(ctx, "staging purge skipping %s: %v", key, err)
			continue
		}
		if !orphan {
			s.Active++
			continue
		}
		s.app.Jobs.Delete(key)
		s.Purged++
	}
}

// CounterMerger folds per-task counters into job totals.
type CounterMerger struct {
	app *App
	// Totals maps counter name to its merged value; Bad counts skipped
	// task records.
	Totals map[string]int
	Bad    int
}

// NewCounterMerger returns a merger.
func NewCounterMerger(app *App) *CounterMerger {
	return &CounterMerger{app: app, Totals: make(map[string]int)}
}

// MergeOnce folds every task counter dump once.
func (c *CounterMerger) MergeOnce(ctx context.Context) {
	for _, key := range c.app.Jobs.ListPrefix("taskcounters/") {
		dump, _ := c.app.Jobs.Get(key)
		parsed, err := ParseCounters(dump)
		if err != nil {
			c.app.log(ctx, "counter merge skipping %s: %v", key, err)
			c.Bad++
			continue
		}
		for name, v := range parsed {
			c.Totals[name] += v
		}
	}
}

// LogArchiver moves completed task logs to the archive prefix.
type LogArchiver struct {
	app *App
	// Archived counts moved logs.
	Archived int
}

// NewLogArchiver returns an archiver.
func NewLogArchiver(app *App) *LogArchiver { return &LogArchiver{app: app} }

// archive moves one log entry.
func (l *LogArchiver) archive(key string) error {
	v, ok := l.app.Jobs.Get(key)
	if !ok {
		return &counterError{kv: key + " vanished"}
	}
	name := strings.TrimPrefix(key, "tasklog/")
	l.app.Jobs.Put("archivedlog/"+name, v)
	l.app.Jobs.Delete(key)
	return nil
}

// ArchiveOnce walks every completed task log once.
func (l *LogArchiver) ArchiveOnce(ctx context.Context) {
	for _, key := range l.app.Jobs.ListPrefix("tasklog/") {
		if err := l.archive(key); err != nil {
			l.app.log(ctx, "log archive skipping %s: %v", key, err)
			continue
		}
		l.Archived++
	}
}

// SlotAuditor validates configured node-manager slot counts.
type SlotAuditor struct {
	app *App
	// Invalid lists nodes with malformed slot configuration.
	Invalid []string
}

// NewSlotAuditor returns an auditor.
func NewSlotAuditor(app *App) *SlotAuditor { return &SlotAuditor{app: app} }

// check parses one node's slot record.
func (s *SlotAuditor) check(key string) error {
	v, _ := s.app.Jobs.Get(key)
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return &counterError{kv: key + "=" + v}
	}
	return nil
}

// AuditOnce walks every slot record once.
func (s *SlotAuditor) AuditOnce(ctx context.Context) {
	for _, key := range s.app.Jobs.ListPrefix("slots/") {
		if err := s.check(key); err != nil {
			s.app.log(ctx, "slot audit: %v", err)
			s.Invalid = append(s.Invalid, key)
			continue
		}
	}
}
