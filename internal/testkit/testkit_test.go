package testkit

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"wasabi/internal/errmodel"
)

func TestRunPassingTest(t *testing.T) {
	res := Run(Test{
		Name: "x.TestOK", App: "XX",
		Body: func(context.Context, map[string]string) error { return nil },
	}, nil, nil)
	if res.Failed() {
		t.Errorf("err = %v", res.Err)
	}
	if res.Run == nil {
		t.Error("missing trace")
	}
}

func TestRunFailingTest(t *testing.T) {
	res := Run(Test{
		Name: "x.TestFail", App: "XX",
		Body: func(context.Context, map[string]string) error {
			return errmodel.New("EOFException", "boom")
		},
	}, nil, nil)
	if !res.Failed() || !errmodel.IsClass(res.Err, "EOFException") {
		t.Errorf("err = %v", res.Err)
	}
}

func nilDeref() {
	var m *struct{ x int }
	_ = m.x
}

func TestRunRecoversNilPanic(t *testing.T) {
	res := Run(Test{
		Name: "x.TestPanic", App: "XX",
		Body: func(context.Context, map[string]string) error {
			nilDeref()
			return nil
		},
	}, nil, nil)
	exc, ok := res.Err.(*errmodel.Exception)
	if !ok || exc.Class != "NullPointerException" {
		t.Fatalf("err = %#v", res.Err)
	}
	if !strings.HasPrefix(exc.Site, "testkit.nilDeref") {
		t.Errorf("panic site = %q, want the panicking frame", exc.Site)
	}
}

func TestRunRecoversIndexPanic(t *testing.T) {
	res := Run(Test{
		Name: "x.TestIndex", App: "XX",
		Body: func(context.Context, map[string]string) error {
			s := []int{}
			i := 3
			_ = s[i]
			return nil
		},
	}, nil, nil)
	exc, ok := res.Err.(*errmodel.Exception)
	if !ok || exc.Class != "IndexOutOfBoundsException" {
		t.Fatalf("err = %#v", res.Err)
	}
}

func TestRunRecoversStringPanic(t *testing.T) {
	res := Run(Test{
		Name: "x.TestStr", App: "XX",
		Body: func(context.Context, map[string]string) error {
			panic("custom failure")
		},
	}, nil, nil)
	exc, ok := res.Err.(*errmodel.Exception)
	if !ok || exc.Class != "RuntimeException" {
		t.Fatalf("err = %#v", res.Err)
	}
}

func TestAssertf(t *testing.T) {
	if Assertf(true, "unused") != nil {
		t.Error("true assertion must pass")
	}
	err := Assertf(false, "got %d", 7)
	if err == nil || !errmodel.IsClass(err, AssertionError) {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "got 7") {
		t.Errorf("message lost: %v", err)
	}
}

func TestRetryRestrictingKey(t *testing.T) {
	for key, want := range map[string]bool{
		"dfs.client.retry.max.attempts": true,
		"hbase.client.retries.number":   true,
		"mapreduce.task.attempts":       true,
		"ipc.backoff.enable":            true,
		"a.reattempt.flag":              true,
		"dfs.blocksize":                 false,
		"buffer.size":                   false,
	} {
		if got := RetryRestrictingKey(key); got != want {
			t.Errorf("RetryRestrictingKey(%q) = %v", key, got)
		}
	}
}

func TestPrepareOverrides(t *testing.T) {
	tc := Test{
		Name: "x.TestCfg", App: "XX",
		Overrides: map[string]string{
			"a.retry.max":  "1",
			"a.batch.size": "64",
		},
	}
	eff, stripped := PrepareOverrides(tc)
	if len(stripped) != 1 || stripped[0] != "a.retry.max" {
		t.Errorf("stripped = %v", stripped)
	}
	if _, ok := eff["a.retry.max"]; ok {
		t.Error("restricting key survived")
	}
	if eff["a.batch.size"] != "64" {
		t.Error("benign override lost")
	}
}

// Property: PrepareOverrides never drops a non-restricting key and never
// keeps a restricting one.
func TestPrepareOverridesProperty(t *testing.T) {
	f := func(keys []string) bool {
		o := map[string]string{}
		for _, k := range keys {
			if k == "" {
				continue
			}
			o[k] = "v"
			o[k+".retry"] = "v"
		}
		eff, _ := PrepareOverrides(Test{Overrides: o})
		for k := range eff {
			if RetryRestrictingKey(k) {
				return false
			}
		}
		for k := range o {
			if !RetryRestrictingKey(k) {
				if _, ok := eff[k]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunUsesProvidedOverrides(t *testing.T) {
	var seen map[string]string
	tc := Test{
		Name: "x.TestOv", App: "XX",
		Overrides: map[string]string{"orig": "1"},
		Body: func(_ context.Context, o map[string]string) error {
			seen = o
			return nil
		},
	}
	Run(tc, nil, map[string]string{"eff": "2"})
	if seen["eff"] != "2" {
		t.Error("explicit overrides not passed")
	}
	Run(tc, nil, nil)
	if seen["orig"] != "1" {
		t.Error("nil overrides should fall back to the test's own")
	}
}

func TestPrepareOverridesEmpty(t *testing.T) {
	// No overrides at all: nothing to strip, and the effective map must be
	// usable (non-nil) so concurrent runs never fall back to sharing the
	// test's own map.
	eff, stripped := PrepareOverrides(Test{Name: "x.TestNone", App: "XX"})
	if eff == nil || len(eff) != 0 {
		t.Errorf("effective = %#v, want empty non-nil map", eff)
	}
	if len(stripped) != 0 {
		t.Errorf("stripped = %v, want none", stripped)
	}
}

func TestPrepareOverridesStripsEverything(t *testing.T) {
	tc := Test{
		Name: "x.TestAllRestricting", App: "XX",
		Overrides: map[string]string{
			"client.retry.max":   "1",
			"server.retries":     "0",
			"task.attempts":      "2",
			"rpc.backoff.enable": "false",
		},
	}
	eff, stripped := PrepareOverrides(tc)
	if len(eff) != 0 {
		t.Errorf("effective = %v, want empty", eff)
	}
	if len(stripped) != len(tc.Overrides) {
		t.Errorf("stripped %d of %d restricting keys: %v", len(stripped), len(tc.Overrides), stripped)
	}
}

func TestPrepareOverridesDoesNotMutateTest(t *testing.T) {
	tc := Test{
		Name: "x.TestNoMutate", App: "XX",
		Overrides: map[string]string{"a.retry.max": "1", "a.batch.size": "64"},
	}
	eff, _ := PrepareOverrides(tc)
	eff["injected"] = "later"
	if len(tc.Overrides) != 2 || tc.Overrides["injected"] != "" {
		t.Errorf("test's own overrides mutated: %v", tc.Overrides)
	}
	if tc.Overrides["a.retry.max"] != "1" {
		t.Error("restricting key removed from the test itself, not just the effective copy")
	}
}

// Concurrent preparation and execution of the same Test value must be
// independent: PrepareOverrides copies, and every Run owns its trace.
func TestPrepareAndRunConcurrently(t *testing.T) {
	tc := Test{
		Name: "x.TestConcurrent", App: "XX",
		Overrides: map[string]string{"a.retry.max": "1", "a.batch.size": "64"},
		Body: func(ctx context.Context, o map[string]string) error {
			if o["a.batch.size"] != "64" {
				return errmodel.New(AssertionError, "override lost")
			}
			return nil
		},
	}
	done := make(chan Result)
	for i := 0; i < 16; i++ {
		go func() {
			eff, _ := PrepareOverrides(tc)
			done <- Run(tc, nil, eff)
		}()
	}
	for i := 0; i < 16; i++ {
		res := <-done
		if res.Failed() {
			t.Errorf("concurrent run failed: %v", res.Err)
		}
		if res.Run == nil {
			t.Error("run lost its trace")
		}
	}
}

func TestValidateEmptySuite(t *testing.T) {
	// A suite with identifiers but no tests is structurally valid — app
	// packages register tests incrementally.
	if err := Validate(Suite{App: "XX", Name: "Empty"}); err != nil {
		t.Errorf("empty suite rejected: %v", err)
	}
	// Missing identifiers are not.
	if err := Validate(Suite{}); err == nil {
		t.Error("suite without identifiers accepted")
	}
}

func TestValidateDuplicateNamesError(t *testing.T) {
	body := func(context.Context, map[string]string) error { return nil }
	s := Suite{App: "XX", Name: "X", Tests: []Test{
		{Name: "x.TestDup", App: "XX", Body: body},
		{Name: "x.TestDup", App: "XX", Body: body},
	}}
	err := Validate(s)
	if err == nil {
		t.Fatal("duplicate test names accepted")
	}
	if !strings.Contains(err.Error(), "x.TestDup") {
		t.Errorf("error should name the duplicate: %v", err)
	}
}

func TestValidateSuite(t *testing.T) {
	ok := Suite{App: "XX", Name: "X", Tests: []Test{
		{Name: "a", App: "XX", Body: func(context.Context, map[string]string) error { return nil }},
	}}
	if err := Validate(ok); err != nil {
		t.Errorf("valid suite rejected: %v", err)
	}
	for _, bad := range []Suite{
		{Name: "X"}, // missing app
		{App: "XX", Name: "X", Tests: []Test{{Name: "", App: "XX", Body: ok.Tests[0].Body}}},
		{App: "XX", Name: "X", Tests: []Test{ok.Tests[0], ok.Tests[0]}},                       // dup
		{App: "XX", Name: "X", Tests: []Test{{Name: "a", App: "XX"}}},                         // nil body
		{App: "XX", Name: "X", Tests: []Test{{Name: "a", App: "YY", Body: ok.Tests[0].Body}}}, // app mismatch
	} {
		if err := Validate(bad); err == nil {
			t.Errorf("invalid suite accepted: %+v", bad)
		}
	}
}
