// Package testkit is the unit-test substrate of the corpus: it represents
// the applications' *existing* test suites as data that WASABI can run
// unmodified, run under fault injection, or run in coverage-observation
// mode (§3.1.4).
//
// A corpus unit test is a function that exercises application code and
// returns nil on success or an exception on failure — mirroring a JUnit
// test method that either passes, fails an assertion (AssertionError), or
// crashes with a thrown exception. Panics inside the application are
// recovered and converted to the corresponding Java-style runtime
// exceptions (a real nil dereference becomes NullPointerException), which
// is what the "different exception" oracle inspects.
package testkit

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"wasabi/internal/errmodel"
	"wasabi/internal/fault"
	"wasabi/internal/trace"
)

// Body is a corpus unit-test body. The overrides map carries the test's
// configuration overrides after WASABI's preparation pass has filtered
// them; bodies apply it to the application config they construct.
type Body func(ctx context.Context, overrides map[string]string) error

// Test is one unit test of a corpus application.
type Test struct {
	// Name is the test identifier, e.g. "hdfs.TestWebFSReadRetries".
	Name string
	// App is the application short code ("HD", "HB", ...).
	App string
	// RetryLabeled marks tests the application developers labeled as
	// retry-related (the 0.1%–0.5% of suites from §2.5).
	RetryLabeled bool
	// Overrides are configuration overrides the test sets. Overrides of
	// retry-restricting keys are what §3.1.4's preparation pass removes.
	Overrides map[string]string
	// Body runs the test.
	Body Body
}

// Suite is an application's unit-test suite.
type Suite struct {
	App   string // short code, e.g. "HD"
	Name  string // human name, e.g. "HDFS"
	Tests []Test
}

// Result is the outcome of one executed test.
type Result struct {
	Test Test
	// Err is the exception the test crashed with, nil when it passed.
	Err error
	// Run is the trace recorded during execution.
	Run *trace.Run
	// VDuration is the virtual time the test consumed.
	VDuration time.Duration
}

// Failed reports whether the test crashed.
func (r Result) Failed() bool { return r.Err != nil }

// AssertionError is the exception class used for corpus assertion failures.
const AssertionError = "AssertionError"

// Assertf returns nil when cond holds and an AssertionError otherwise —
// the corpus analogue of JUnit's assertTrue.
func Assertf(cond bool, format string, args ...any) error {
	if cond {
		return nil
	}
	return errmodel.Newf(AssertionError, format, args...)
}

// Run executes a test with the given injector (which may be nil for a
// plain run) and effective overrides. Panics raised by application code
// are converted to exceptions.
func Run(t Test, inj *fault.Injector, overrides map[string]string) Result {
	run := trace.NewRun(t.Name)
	ctx := trace.With(context.Background(), run)
	if inj != nil {
		ctx = fault.With(ctx, inj)
	}
	if overrides == nil {
		overrides = t.Overrides
	}
	err := invoke(ctx, t.Body, overrides)
	return Result{Test: t, Err: err, Run: run, VDuration: run.VNow()}
}

// invoke calls the body, recovering panics into exceptions.
func invoke(ctx context.Context, body Body, overrides map[string]string) (err error) {
	defer func() {
		if p := recover(); p != nil {
			exc := panicToException(p)
			if e, ok := exc.(*errmodel.Exception); ok {
				if site := panicSite(); site != "" {
					// The crash site is the panicking application frame,
					// not wherever the exception value was materialized.
					e.Site = site
				}
			}
			err = exc
		}
	}()
	return body(ctx, overrides)
}

// panicSite walks the in-flight panic stack (still intact inside the
// deferred recovery) and returns the first frame outside this harness and
// the runtime — the crash site used for bug grouping.
func panicSite() string {
	for _, f := range trace.Callers(0, 32) {
		switch {
		case strings.HasPrefix(f, "testkit.invoke"),
			strings.HasPrefix(f, "testkit.panic"),
			strings.HasPrefix(f, "testkit.Run"),
			strings.HasPrefix(f, "runtime."),
			strings.HasPrefix(f, "errmodel."),
			strings.HasPrefix(f, "trace."):
			continue
		}
		return f
	}
	return ""
}

// panicToException maps a recovered panic value to the Java-style
// exception a JVM would have raised for the same defect.
func panicToException(p any) error {
	switch v := p.(type) {
	case *errmodel.Exception:
		return v
	case error:
		msg := v.Error()
		if _, isRuntime := v.(runtime.Error); isRuntime {
			switch {
			case strings.Contains(msg, "nil pointer") || strings.Contains(msg, "nil map"):
				return errmodel.New("NullPointerException", msg)
			case strings.Contains(msg, "index out of range") || strings.Contains(msg, "slice bounds"):
				return errmodel.New("IndexOutOfBoundsException", msg)
			case strings.Contains(msg, "divide by zero"):
				return errmodel.New("ArithmeticException", msg)
			}
			return errmodel.New("RuntimeException", msg)
		}
		return errmodel.New("RuntimeException", msg)
	default:
		return errmodel.Newf("RuntimeException", "panic: %v", v)
	}
}

// RetryRestrictingKey reports whether a configuration key is one whose
// override in a test would restrict retry behaviour: the §3.1.4
// preparation pass removes such overrides so injected faults exercise the
// application's real (default) retry policy.
func RetryRestrictingKey(key string) bool {
	k := strings.ToLower(key)
	for _, marker := range []string{"retry", "retries", "attempts", "backoff", "reattempt"} {
		if strings.Contains(k, marker) {
			return true
		}
	}
	return false
}

// PrepareOverrides implements the preparation pass: it returns the test's
// overrides with retry-restricting keys removed, and the list of keys that
// were stripped.
func PrepareOverrides(t Test) (effective map[string]string, stripped []string) {
	effective = make(map[string]string, len(t.Overrides))
	for k, v := range t.Overrides {
		if RetryRestrictingKey(k) {
			stripped = append(stripped, k)
			continue
		}
		effective[k] = v
	}
	return effective, stripped
}

// Validate performs basic sanity checks on a suite and returns a
// descriptive error for the first problem found. The corpus tests use it
// to guard against duplicate registrations.
func Validate(s Suite) error {
	if s.App == "" || s.Name == "" {
		return fmt.Errorf("suite missing identifiers: %+v", s)
	}
	seen := make(map[string]bool, len(s.Tests))
	for _, t := range s.Tests {
		if t.Name == "" {
			return fmt.Errorf("suite %s contains an unnamed test", s.App)
		}
		if seen[t.Name] {
			return fmt.Errorf("suite %s contains duplicate test %s", s.App, t.Name)
		}
		seen[t.Name] = true
		if t.Body == nil {
			return fmt.Errorf("test %s has no body", t.Name)
		}
		if t.App != s.App {
			return fmt.Errorf("test %s declares app %s inside suite %s", t.Name, t.App, s.App)
		}
	}
	return nil
}
