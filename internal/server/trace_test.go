package server

// trace_test.go proves the per-job observability contract: every job's
// span tree is complete (queue-wait → slot run → pipeline stages →
// per-file reviews), self-contained (byte-isolated from every
// concurrently running job), and correlated (the same job_id / tenant /
// trace_id on every span, every log event and the tenant cost series).
// Run under -race via `make serve-smoke`.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"wasabi/internal/cache"
	"wasabi/internal/obs"
)

// traceEvents decodes a serialized Chrome trace and returns its complete
// ("X") events.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Args map[string]string `json:"args"`
}

func traceEvents(t *testing.T, data []byte) []traceEvent {
	t.Helper()
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spans []traceEvent
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans = append(spans, ev)
		}
	}
	return spans
}

// jobIdentity fetches a job's id/tenant/trace_id triple from the API.
func jobIdentity(t *testing.T, s *Server, id string) (tenant, traceID string) {
	t.Helper()
	rec := do(s, "GET", "/v1/jobs/"+id, "")
	var v struct {
		Tenant  string `json:"tenant"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	return v.Tenant, v.TraceID
}

// TestJobTraceIsolationUnderConcurrency runs three tenants' jobs
// concurrently and asserts each produced a complete, self-contained
// span tree carrying its own identity — and that the per-tenant token
// counters sum exactly to the fleet-wide fresh-spend counter.
func TestJobTraceIsolationUnderConcurrency(t *testing.T) {
	observer := obs.New()
	ca, err := cache.New(cache.Options{Metrics: observer.Reg()})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Addr:            "127.0.0.1:0",
		QueueDepth:      4,
		SchedulerSlots:  3,
		PipelineWorkers: 2,
		Cache:           ca,
		Obs:             observer,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s)

	const m = 3
	ids := make([]string, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"tenant":"trace-tenant-%d","apps":["HD"]}`, i)
			rec := do(s, "POST", "/v1/analyze", body)
			if rec.Code != 202 {
				t.Errorf("submit %d: status = %d", i, rec.Code)
				return
			}
			var v struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range ids {
		awaitJob(t, s, id)
	}

	traces := make([][]byte, m)
	tenants := make([]string, m)
	traceIDs := make([]string, m)
	for i, id := range ids {
		tenants[i], traceIDs[i] = jobIdentity(t, s, id)
		if traceIDs[i] == "" {
			t.Fatalf("job %s has no trace_id", id)
		}
		rec := do(s, "GET", "/v1/jobs/"+id+"/trace", "")
		if rec.Code != 200 {
			t.Fatalf("trace %s: status %d", id, rec.Code)
		}
		traces[i] = rec.Body.Bytes()
	}

	for i, id := range ids {
		spans := traceEvents(t, traces[i])
		if len(spans) == 0 {
			t.Fatalf("job %s: empty trace", id)
		}
		seen := map[string]bool{}
		reviews := 0
		for _, ev := range spans {
			seen[ev.Name] = true
			if strings.HasPrefix(ev.Name, "review:") {
				reviews++
			}
			if ev.Args["job_id"] != id || ev.Args["tenant"] != tenants[i] || ev.Args["trace_id"] != traceIDs[i] {
				t.Fatalf("job %s: span %q carries foreign identity %v", id, ev.Name, ev.Args)
			}
			if ev.TS < 0 {
				t.Fatalf("job %s: span %q starts before the trace anchor (ts %d)", id, ev.Name, ev.TS)
			}
		}
		for _, want := range []string{"job", "queue-wait", "run", "corpus", "app:HD"} {
			if !seen[want] {
				t.Fatalf("job %s: trace missing the %q span (have %d spans)", id, want, len(spans))
			}
		}
		if reviews == 0 {
			t.Fatalf("job %s: trace has no per-file review spans", id)
		}
		// The pipeline root must hang off the job's own envelope.
		for _, ev := range spans {
			if ev.Name == "corpus" && ev.Args["parent"] != "run" {
				t.Fatalf("job %s: corpus span parent = %q, want \"run\"", id, ev.Args["parent"])
			}
		}
		// Byte isolation: nothing of any other job leaks into this trace.
		for k := 0; k < m; k++ {
			if k == i {
				continue
			}
			if bytes.Contains(traces[i], []byte(ids[k])) || bytes.Contains(traces[i], []byte(traceIDs[k])) {
				t.Fatalf("trace for %s contains identity of %s", id, ids[k])
			}
		}
	}

	// Fair billing: the per-tenant fresh-token counters partition the
	// fleet counter exactly (both count the same logical event — a fresh
	// review charging the backend).
	snap := observer.Reg().Snapshot()
	var tenantSum int64
	for _, c := range snap.Counters {
		if c.Name == "server_tenant_llm_tokens_total" {
			tenantSum += c.Value
		}
	}
	if fleet := snap.Counter("llm_tokens_in_total"); tenantSum != fleet {
		t.Fatalf("sum(server_tenant_llm_tokens_total) = %d, llm_tokens_in_total = %d — tenant attribution must partition fresh spend exactly", tenantSum, fleet)
	}
	if tenantSum == 0 {
		t.Fatal("no fresh spend recorded; the partition check proved nothing")
	}
}

// TestTraceRingBoundAndIndex pins the ring's eviction discipline: a full
// ring drops the oldest trace, counts the eviction, and the index lists
// survivors newest first.
func TestTraceRingBoundAndIndex(t *testing.T) {
	reg := obs.NewRegistry()
	ring := newTraceRing(2, reg)
	for i := 1; i <= 3; i++ {
		ring.put(traceMeta{JobID: fmt.Sprintf("job-%d", i), Tenant: "a", State: "done"}, []byte(fmt.Sprintf("trace-%d", i)))
	}
	if _, ok := ring.get("job-1"); ok {
		t.Fatal("job-1 should have been evicted (capacity 2)")
	}
	data, ok := ring.get("job-3")
	if !ok || string(data) != "trace-3" {
		t.Fatalf("job-3 trace = %q, %v", data, ok)
	}
	idx := ring.index()
	if len(idx) != 2 || idx[0].JobID != "job-3" || idx[1].JobID != "job-2" {
		t.Fatalf("index = %+v, want [job-3 job-2]", idx)
	}
	if idx[0].Bytes != len("trace-3") {
		t.Fatalf("index bytes = %d", idx[0].Bytes)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("server_trace_ring_evictions_total"); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

// TestTraceEndpointsBeforeCompletion: a queued job has no trace yet, an
// unknown job has none ever, and the index starts empty.
func TestTraceEndpointsBeforeCompletion(t *testing.T) {
	s := New(Config{QueueDepth: 4}) // never Started: submissions stay queued
	if rec := do(s, "GET", "/v1/jobs/job-9/trace", ""); rec.Code != 404 {
		t.Fatalf("unknown job trace: status = %d, want 404", rec.Code)
	}
	rec := do(s, "POST", "/v1/analyze", `{"apps":["HD"]}`)
	if rec.Code != 202 {
		t.Fatalf("submit: status = %d", rec.Code)
	}
	rec = do(s, "GET", "/v1/jobs/job-1/trace", "")
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "until the job completes") {
		t.Fatalf("queued job trace: status = %d body %q", rec.Code, rec.Body.String())
	}
	rec = do(s, "GET", "/v1/traces", "")
	var idx struct {
		Traces []traceMeta `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Traces) != 0 {
		t.Fatalf("index before any completion = %+v", idx.Traces)
	}
}

// syncBuffer is a goroutine-safe log sink (slog handlers write from
// every worker slot).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestStructuredLogCorrelation runs one real job with a JSON slog
// handler attached and asserts the daemon's event stream carries the
// job's correlation identity end to end, closing with the lifecycle and
// eviction events.
func TestStructuredLogCorrelation(t *testing.T) {
	var sink syncBuffer
	observer := obs.New()
	ca, err := cache.New(cache.Options{Metrics: observer.Reg()})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Addr:            "127.0.0.1:0",
		QueueDepth:      4,
		PipelineWorkers: 2,
		Cache:           ca,
		Obs:             observer,
		Log:             slog.New(slog.NewJSONHandler(&sink, nil)),
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	rec := do(s, "POST", "/v1/analyze", `{"tenant":"log-tenant","apps":["HD"]}`)
	if rec.Code != 202 {
		t.Fatalf("submit: status = %d", rec.Code)
	}
	var v struct {
		ID      string `json:"id"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	awaitJob(t, s, v.ID)
	shutdown(t, s)

	events := map[string]map[string]any{}
	for _, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		msg, _ := ev["msg"].(string)
		events[msg] = ev
	}
	for _, want := range []string{evServerStart, evJobAccepted, evJobStart, evJobFinish, evTenantEvicted, evServerDrain, evServerStop} {
		if _, ok := events[want]; !ok {
			t.Fatalf("log stream missing event %q (have %v)", want, keys(events))
		}
	}
	for _, ev := range []string{evJobAccepted, evJobStart, evJobFinish} {
		e := events[ev]
		if e["job_id"] != v.ID || e["tenant"] != "log-tenant" || e["trace_id"] != v.TraceID {
			t.Fatalf("event %q carries wrong identity: %v (want %s/log-tenant/%s)", ev, e, v.ID, v.TraceID)
		}
	}
	if e := events[evJobFinish]; e["state"] != "done" {
		t.Fatalf("job.finish state = %v", e["state"])
	}
	if e := events[evTenantEvicted]; e["tenant"] != "log-tenant" {
		t.Fatalf("eviction event tenant = %v", e["tenant"])
	}
}

func keys(m map[string]map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTenantEvictionReclaimsState drives the scheduler directly: a
// tenant is evicted the moment its last in-flight job finishes with an
// empty backlog — and not a moment earlier — removing its state gauges
// and counting the eviction. A returning tenant starts fresh.
func TestTenantEvictionReclaimsState(t *testing.T) {
	reg := obs.NewRegistry()
	sc := newScheduler(2, 2, 4, nil, reg, nil)
	enq := func(tenant string) *job {
		j := &job{tenant: tenant}
		if _, err := sc.enqueue(j); err != nil {
			t.Fatal(err)
		}
		return j
	}
	enq("a")
	enq("a")
	enq("b")

	pick := func() *job {
		sc.mu.Lock()
		defer sc.mu.Unlock()
		return sc.pickLocked()
	}
	j1 := pick() // a
	if j1 == nil || j1.tenant != "a" {
		t.Fatalf("first pick = %+v", j1)
	}
	sc.finish(j1) // a still has backlog: no eviction
	if _, ok := sc.tenants["a"]; !ok {
		t.Fatal("tenant a evicted while its backlog was non-empty")
	}
	j2 := pick() // b (cursor moved past a)
	j3 := pick() // a's second job
	if j2 == nil || j2.tenant != "b" || j3 == nil || j3.tenant != "a" {
		t.Fatalf("picks = %+v %+v", j2, j3)
	}
	sc.finish(j2) // b idle → evicted
	if _, ok := sc.tenants["b"]; ok {
		t.Fatal("tenant b not evicted when idle")
	}
	sc.finish(j3) // a idle → evicted
	if len(sc.tenants) != 0 || len(sc.order) != 0 {
		t.Fatalf("scheduler state not reclaimed: tenants=%v order=%v", sc.tenants, sc.order)
	}
	if sc.cursor != 0 {
		t.Fatalf("cursor = %d after all evictions, want 0", sc.cursor)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("server_sched_tenant_evictions_total"); got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
	for _, g := range snap.Gauges {
		if g.Name == "server_sched_queue_depth" || g.Name == "server_sched_tenant_inflight" {
			t.Fatalf("stale per-tenant gauge survived: %+v", g)
		}
	}
	// Monotonic history survives eviction — folded into the reserved
	// "_retired" tenant (a's 2 jobs + b's 1), with the per-tenant series
	// themselves removed so sums never go backwards yet labels don't
	// accumulate forever.
	if got := snap.Counter("server_sched_jobs_total", "tenant", "a"); got != 0 {
		t.Fatalf("jobs_total{a} = %d after eviction, want 0 (folded)", got)
	}
	if got := snap.Counter("server_sched_jobs_total", "tenant", RetiredTenant); got != 3 {
		t.Fatalf("jobs_total{_retired} = %d, want 3", got)
	}

	// A returning tenant is re-created from scratch with fresh credit.
	enq("a")
	j := pick()
	if j == nil || j.tenant != "a" {
		t.Fatalf("returning tenant pick = %+v", j)
	}
	sc.finish(j)
	if got := reg.Snapshot().Counter("server_sched_tenant_evictions_total"); got != 3 {
		t.Fatalf("evictions after return = %d, want 3", got)
	}
	if got := reg.Snapshot().Counter("server_sched_jobs_total", "tenant", RetiredTenant); got != 4 {
		t.Fatalf("jobs_total{_retired} after return = %d, want 4", got)
	}
}
