// log.go is the daemon's structured logging surface. Every event the
// daemon emits about a job carries the job's correlation identity —
// job_id, tenant, trace_id — so one grep (or one log-pipeline filter)
// reconstructs a job's full lifecycle and joins it to its span tree
// (GET /v1/jobs/{id}/trace) and to the per-tenant cost series. This is
// the per-request provenance the §4.3 cost accounting needs in a served
// setting: which job retried, which degraded, what it cost and for whom.
//
// Events are named constants, never inline strings, and the catalog in
// docs/OBSERVABILITY.md must list every one (scripts/docs_check.sh
// enforces it). The logger itself is log/slog: cmd/wasabid picks the
// handler (-log-format text|json, -log-level) and hands it in via
// Config.Log; a nil Config.Log discards, so tests and embedded use pay
// only for the event-assembly they observe.
package server

import (
	"io"
	"log/slog"
)

// Log event names. One constant per distinct daemon happening; the
// docs/OBSERVABILITY.md log-event catalog documents each one's fields.
const (
	// evServerStart: the daemon bound its listener and started its
	// scheduler slots. Fields: addr, slots, version.
	evServerStart = "server.start"
	// evServerDrain: shutdown began; admission is closed and accepted
	// jobs are running to completion.
	evServerDrain = "server.drain"
	// evServerStop: drain finished and the listener closed. Fields:
	// uptime_s.
	evServerStop = "server.stop"
	// evJobAccepted: a submission passed validation and entered its
	// tenant's queue. Fields: job identity, apps, queue_depth.
	evJobAccepted = "job.accepted"
	// evJobRejected: a submission was refused. Fields: tenant, reason
	// (draining | queue-full), status (the HTTP code sent).
	evJobRejected = "job.rejected"
	// evJobStart: a scheduler slot picked the job and the pipeline run
	// began. Fields: job identity, queue_wait_ms.
	evJobStart = "job.start"
	// evJobFinish: the run completed (either way). Fields: job identity,
	// state (done | failed), run_ms, fresh_tokens, spans, error.
	evJobFinish = "job.finish"
	// evJobDegraded: the job completed but one or more file reviews fell
	// back to static-only analysis. Fields: job identity, degraded_files.
	evJobDegraded = "job.degraded"
	// evTenantEvicted: a tenant went idle (empty queue, zero in-flight)
	// and the scheduler reclaimed its state. Fields: tenant.
	evTenantEvicted = "sched.tenant_evicted"
)

// discardLogger is the nil-Config.Log default: a real *slog.Logger (so
// call sites never nil-check) that writes nowhere.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// jobAttrs renders a job's correlation identity as slog attrs — the
// prefix every job-scoped event carries.
func jobAttrs(j *job) []any {
	return []any{"job_id", j.id, "tenant", j.tenant, "trace_id", j.traceID}
}

// logJob emits a job-scoped event with the correlation identity first.
func (s *Server) logJob(ev string, j *job, args ...any) {
	s.log.Info(ev, append(jobAttrs(j), args...)...)
}
