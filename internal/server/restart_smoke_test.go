package server_test

// restart_smoke_test.go is the end-to-end restart exercise `make
// restart-smoke` runs: a real wasabid binary (built here) serving on a
// loopback port with a persistent -cache-dir, one cold job, a SIGTERM
// drain, a relaunch over the same cache directory, and one warm job
// that must reproduce the cold report byte-for-byte while parsing
// nothing and extracting nothing — the acceptance proof that the static
// tier's retry-facts round-trip through the disk cache across process
// boundaries, not just across in-process cache handles.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildWasabid compiles cmd/wasabid into a temp dir and returns the
// binary path. The build is incremental (shared GOCACHE), so this costs
// seconds on the first run and almost nothing after.
func buildWasabid(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "wasabid")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/wasabid")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build wasabid: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running wasabid process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startDaemon launches wasabid against cacheDir on a kernel-picked port
// and waits for it to announce its address and pass /healthz.
func startDaemon(t *testing.T, bin, cacheDir string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-cache-dir", cacheDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The daemon prints "wasabid: listening on 127.0.0.1:PORT (...)" on
	// stderr once the listener is up.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		re := regexp.MustCompile(`listening on (\S+)`)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("wasabid did not announce its listen address")
	}
	d := &daemon{cmd: cmd, base: "http://" + addr}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("wasabid at %s never became healthy: %v", d.base, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// terminate sends SIGTERM (graceful drain) and waits for a clean exit.
func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wasabid exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		d.cmd.Process.Kill()
		t.Fatal("wasabid did not drain within 60s of SIGTERM")
	}
}

// metricValue reads one series from a /metrics exposition. An absent
// series reads as 0 — exactly how an aggregator would see it, and the
// correct interpretation for counters that were never incremented.
func metricValue(text, series string) float64 {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, series)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err == nil {
			return v
		}
	}
	return 0
}

// getMetrics fetches the full /metrics exposition text.
func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestRestartSmokeProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	bin := buildWasabid(t)
	cacheDir := t.TempDir()

	// Cold process: the job pays real parses, extractions and LLM spend,
	// and the disk tier absorbs every review and facts entry.
	d1 := startDaemon(t, bin, cacheDir)
	id1 := submit(t, d1.base, "restart-smoke")
	_, coldReport, coldFresh := await(t, d1.base, id1)
	if coldFresh.TokensIn == 0 || coldFresh.Calls == 0 {
		t.Fatalf("cold job spent nothing: %+v", coldFresh)
	}
	coldMetrics := getMetrics(t, d1.base)
	if n := metricValue(coldMetrics, "source_parse_total"); n == 0 {
		t.Fatal("cold job parsed nothing — the smoke test is not exercising the static tier")
	}
	if n := metricValue(coldMetrics, fmt.Sprintf("source_derived_computes_total{kind=%q}", "sast-extract")); n == 0 {
		t.Fatal("cold job extracted nothing")
	}
	if n := metricValue(coldMetrics, "cache_disk_entries"); n == 0 {
		t.Fatal("cold job persisted nothing to the disk tier")
	}
	d1.terminate(t)

	// Warm process over the same cache directory: byte-identical report,
	// zero fresh LLM spend, and — the portable-facts guarantee — zero
	// parses and zero extractions, every file hydrated from disk.
	d2 := startDaemon(t, bin, cacheDir)
	id2 := submit(t, d2.base, "restart-smoke")
	_, warmReport, warmFresh := await(t, d2.base, id2)
	if warmFresh.TokensIn != 0 || warmFresh.Calls != 0 {
		t.Fatalf("restart-warm job spent fresh LLM traffic: %+v", warmFresh)
	}
	if !bytes.Equal(coldReport, warmReport) {
		t.Fatalf("restart-warm report differs from cold: %d vs %d bytes",
			len(warmReport), len(coldReport))
	}
	warmMetrics := getMetrics(t, d2.base)
	if n := metricValue(warmMetrics, "source_parse_total"); n != 0 {
		t.Fatalf("restart-warm job parsed %v files, want 0", n)
	}
	if n := metricValue(warmMetrics, fmt.Sprintf("source_derived_computes_total{kind=%q}", "sast-extract")); n != 0 {
		t.Fatalf("restart-warm job ran %v extractions, want 0", n)
	}
	if n := metricValue(warmMetrics, fmt.Sprintf("source_derived_hydrations_total{kind=%q}", "sast-extract")); n == 0 {
		t.Fatal("restart-warm job hydrated no facts from the disk tier")
	}
	if n := metricValue(warmMetrics, `cache_hits_total{stage="facts"}`); n == 0 {
		t.Fatal("restart-warm job recorded no facts-stage cache hits")
	}
	d2.terminate(t)

	// The drained daemons left the cache directory intact for the next
	// restart: entries on disk, no stray temp files.
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			n++
		} else {
			t.Fatalf("stray non-entry file in cache dir: %s", e.Name())
		}
	}
	if n == 0 {
		t.Fatal("cache directory empty after drain")
	}
}
