// Package server is WASABI-as-a-service: the HTTP front end that turns
// the one-shot batch pipeline into a long-running analysis daemon
// (cmd/wasabid). The paper prices a single batch run at ~2,600 GPT-4
// calls and ~$8 per app (§4.3); serving re-analysis behind the
// content-addressed cache (internal/cache) makes the steady state
// incremental instead — an unchanged corpus re-analyzes with zero fresh
// LLM spend, and a one-file change re-reviews one file.
//
// Surface (docs/SERVICE.md is the full reference):
//
//	POST /v1/analyze        submit an analysis job (bounded queue; full → 429)
//	GET  /v1/jobs/{id}      job status, and the canonical JSON report when done
//	GET  /v1/reports/{app}  latest completed report section for one app
//	GET  /healthz           liveness (503 while draining)
//	GET  /metrics           Prometheus text exposition of the registry
//
// Jobs execute one at a time on a single runner goroutine — concurrency
// lives *inside* a job (core.Options.Workers), where it is bounded and
// deterministic — and every job shares the server's cache and metrics
// registry. Shutdown is a graceful drain: accepted jobs (queued or
// running) complete, new submissions are refused, and only then does the
// listener stop.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/cache"
	"wasabi/internal/core"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/report"
	"wasabi/internal/source"
)

// Config tunes the daemon.
type Config struct {
	// Addr is the listen address ("host:port"; ":0" picks a free port).
	Addr string
	// QueueDepth bounds the job queue; submissions beyond it are refused
	// with 429. Zero means 8.
	QueueDepth int
	// PipelineWorkers is core.Options.Workers for every job (0 = one per
	// CPU).
	PipelineWorkers int
	// Cache, when non-nil, is shared by every job (and its hit/miss
	// counters appear in /metrics when it was built on Obs's registry).
	Cache *cache.Cache
	// Fault, when non-nil, runs every job against an unreliable
	// simulated LLM backend (chaos drills; see docs/RESILIENCE.md).
	Fault *llm.FaultProfile
	// Obs observes the daemon: job and queue metrics, plus every
	// pipeline metric of every job, accumulate in its registry, which
	// /metrics serves. Nil disables observability (including /metrics
	// content).
	Obs *obs.Observer
	// Pprof, when true, exposes the Go runtime profiler under
	// /debug/pprof/ (docs/SERVICE.md). Off by default: the endpoints
	// leak operational detail and cost CPU while profiling, so they are
	// opt-in (cmd/wasabid's -pprof flag).
	Pprof bool
}

// Server is the analysis daemon. Create with New, run with Start, stop
// with Shutdown.
type Server struct {
	cfg  Config
	obs  *obs.Observer
	http *http.Server
	ln   net.Listener
	// source is the daemon-lifetime snapshot store every job loads
	// corpus bytes through: content unchanged between jobs is never
	// re-parsed, which (with the analysis cache) makes warm re-analysis
	// file-granular (docs/PERFORMANCE.md).
	source *source.Store

	mu         sync.Mutex
	draining   bool
	nextID     int
	jobs       map[string]*job
	appReports map[string][]byte

	queue      chan *job
	runnerDone chan struct{}
}

// job is one queued analysis request and its outcome.
type job struct {
	id   string
	apps []corpus.App

	// Guarded by Server.mu after submission.
	state  string // "queued" | "running" | "done" | "failed"
	err    string
	report []byte
	fresh  llm.Usage
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	s := &Server{
		cfg:        cfg,
		obs:        cfg.Obs,
		source:     source.NewStore(cfg.Obs.Reg()),
		jobs:       make(map[string]*job),
		appReports: make(map[string][]byte),
		queue:      make(chan *job, cfg.QueueDepth),
		runnerDone: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/reports/{app}", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.http = &http.Server{Handler: mux}
	s.obs.Reg().Gauge("server_queue_capacity").Set(float64(cfg.QueueDepth))
	return s
}

// Start binds the listen address, launches the job runner and begins
// serving. It returns once the listener is bound; Addr reports the bound
// address (useful with ":0").
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	go s.runner()
	go s.http.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains the daemon: new submissions are refused (healthz turns
// 503 so load balancers stop routing), every accepted job runs to
// completion, then the HTTP listener closes. The context bounds the
// wait; on expiry the listener is closed anyway and the error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	var err error
	select {
	case <-s.runnerDone:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.http.Close()
	return err
}

// runner executes queued jobs in submission order until the queue closes
// on drain.
func (s *Server) runner() {
	defer close(s.runnerDone)
	for j := range s.queue {
		s.obs.Reg().Gauge("server_queue_depth").Set(float64(len(s.queue)))
		s.run(j)
	}
}

// run executes one job through the pipeline.
func (s *Server) run(j *job) {
	s.mu.Lock()
	j.state = "running"
	s.mu.Unlock()
	s.obs.Reg().Gauge("server_inflight_jobs").Set(1)
	defer s.obs.Reg().Gauge("server_inflight_jobs").Set(0)
	start := time.Now()

	opts := core.DefaultOptions()
	opts.Workers = s.cfg.PipelineWorkers
	opts.Obs = s.obs
	opts.Cache = s.cfg.Cache
	opts.Source = s.source
	if s.cfg.Fault != nil {
		opts.LLM.Fault = s.cfg.Fault
	}
	w := core.New(opts)
	cr, err := w.RunCorpus(j.apps)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.Reg().Histogram("server_job_ms", obs.LatencyBuckets).Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if err == nil {
		doc := report.Build(cr)
		var data []byte
		if data, err = report.Marshal(doc); err == nil {
			j.report = data
			for _, app := range doc.Apps {
				if appData, aerr := report.MarshalApp(app); aerr == nil {
					s.appReports[app.Code] = appData
				}
			}
		}
	}
	if err != nil {
		j.state, j.err = "failed", err.Error()
		s.obs.Reg().Counter("server_jobs_total", "status", "failed").Inc()
		return
	}
	j.state = "done"
	j.fresh = w.LLMUsage()
	s.obs.Reg().Counter("server_jobs_total", "status", "done").Inc()
}

// analyzeRequest is the POST /v1/analyze body.
type analyzeRequest struct {
	// Apps lists corpus short codes; empty means the full corpus.
	Apps []string `json:"apps"`
}

// jobView is the wire shape of a job (also the POST /v1/analyze
// response, minus report).
type jobView struct {
	ID    string   `json:"id"`
	State string   `json:"state"`
	Apps  []string `json:"apps"`
	Error string   `json:"error,omitempty"`
	// FreshLLM is the LLM traffic the job actually generated — zero for
	// a fully cache-served run, unlike the report's attributed usage.
	FreshLLM *freshUsage `json:"fresh_llm,omitempty"`
	// Report is the canonical JSON document (internal/report), present
	// once the job is done.
	Report json.RawMessage `json:"report,omitempty"`
}

// freshUsage is llm.Usage with stable JSON keys.
type freshUsage struct {
	Calls    int     `json:"calls"`
	TokensIn int64   `json:"tokens_in"`
	CostUSD  float64 `json:"cost_usd"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	var req analyzeRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
	}
	apps := corpus.Apps()
	if len(req.Apps) > 0 {
		apps = make([]corpus.App, 0, len(req.Apps))
		for _, code := range req.Apps {
			app, err := corpus.ByCode(code)
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			apps = append(apps, app)
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.obs.Reg().Counter("server_jobs_total", "status", "rejected").Inc()
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.nextID++
	j := &job{id: fmt.Sprintf("job-%d", s.nextID), apps: apps, state: "queued"}
	select {
	case s.queue <- j:
	default:
		s.nextID-- // not accepted: reuse the id
		s.mu.Unlock()
		s.obs.Reg().Counter("server_jobs_total", "status", "rejected").Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "job queue full")
		return
	}
	s.jobs[j.id] = j
	view := s.viewLocked(j, false)
	s.mu.Unlock()

	s.obs.Reg().Counter("server_jobs_total", "status", "accepted").Inc()
	s.obs.Reg().Gauge("server_queue_depth").Set(float64(len(s.queue)))
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	view := s.viewLocked(j, true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// viewLocked renders a job's wire shape; s.mu must be held.
func (s *Server) viewLocked(j *job, includeReport bool) jobView {
	v := jobView{ID: j.id, State: j.state, Error: j.err}
	for _, app := range j.apps {
		v.Apps = append(v.Apps, app.Code)
	}
	if j.state == "done" {
		v.FreshLLM = &freshUsage{Calls: j.fresh.Calls, TokensIn: j.fresh.TokensIn, CostUSD: j.fresh.CostUSD}
		if includeReport {
			v.Report = j.report
		}
	}
	return v
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	data, ok := s.appReports[r.PathValue("app")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no completed report for app")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteText(w, s.obs.Reg().Snapshot()) //nolint:errcheck // client gone
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeJSON writes v as indented JSON.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(data, '\n'))
}
