// Package server is WASABI-as-a-service: the HTTP front end that turns
// the one-shot batch pipeline into a long-running analysis daemon
// (cmd/wasabid). The paper prices a single batch run at ~2,600 GPT-4
// calls and ~$8 per app (§4.3); serving re-analysis behind the
// content-addressed cache (internal/cache) makes the steady state
// incremental instead — an unchanged corpus re-analyzes with zero fresh
// LLM spend, and a one-file change re-reviews one file.
//
// Surface (docs/SERVICE.md is the full reference):
//
//	POST /v1/analyze            submit an analysis job (tenant queue full → 429)
//	GET  /v1/jobs/{id}          job status, and the canonical JSON report when done
//	GET  /v1/jobs/{id}/trace    the job's span tree (Chrome trace-event JSON)
//	GET  /v1/traces             index of retained traces, newest first
//	GET  /v1/reports/{app}      latest completed report section for one app
//	GET  /healthz               liveness (503 while draining)
//	GET  /metrics               Prometheus text exposition of the registry
//
// Jobs execute concurrently on Config.SchedulerSlots worker slots fed by
// per-tenant fair queues (scheduler.go, docs/SCHEDULING.md): every
// submission carries a tenant key (default DefaultTenant), tenants are
// served weighted round-robin under per-tenant in-flight quotas, and a
// full tenant queue answers 429 without affecting other tenants.
// Concurrency *inside* a job (core.Options.Workers) stays bounded and
// deterministic; every job shares the server's cache, snapshot store and
// metrics registry. Shutdown is a graceful drain: accepted jobs (queued
// or running) complete, new submissions are refused, and only then does
// the listener stop.
//
// Every job is observable end to end (docs/OBSERVABILITY.md "Daemon
// tracing"): submission mints a job context — job id, tenant, trace id —
// that rides every structured log event (log.go), every span of the
// job's private tracer (queue-wait → slot run → pipeline stages →
// per-file reviews), and the per-tenant cost series
// server_tenant_llm_tokens_total / server_tenant_job_ms that pair fair
// scheduling with fair billing.
package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"time"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/cache"
	"wasabi/internal/core"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/report"
	"wasabi/internal/source"
)

// DefaultTenant is the tenant key of submissions that name none — the
// pre-tenancy API shape keeps working and lands in one shared queue.
const DefaultTenant = "shared"

// maxTenantLen bounds tenant names; they become metric label values, so
// unbounded attacker-chosen strings would bloat the registry.
const maxTenantLen = 64

// Config tunes the daemon.
type Config struct {
	// Addr is the listen address ("host:port"; ":0" picks a free port).
	Addr string
	// QueueDepth bounds each tenant's job queue; submissions beyond it
	// are refused with 429 for that tenant only. Zero means 8.
	QueueDepth int
	// SchedulerSlots is how many jobs run concurrently (the worker slot
	// count of the scheduler). Zero derives from the host: GOMAXPROCS,
	// floored at 2 so tenants overlap even on one core (job runtime is
	// not purely CPU-bound once the cache and disk tiers are warm).
	SchedulerSlots int
	// TenantQuota caps how many slots one tenant may occupy at once.
	// Zero means SchedulerSlots (a lone tenant may use every slot; set
	// it lower to guarantee idle headroom for late arrivals).
	TenantQuota int
	// TenantPriority maps tenant name → round-robin weight (≥1). A
	// tenant with weight w gets up to w consecutive picks per scheduling
	// cycle; unlisted tenants weigh 1. See docs/SCHEDULING.md.
	TenantPriority map[string]int
	// PipelineWorkers is core.Options.Workers for every job (0 = one per
	// CPU).
	PipelineWorkers int
	// Cache, when non-nil, is shared by every job (and its hit/miss
	// counters appear in /metrics when it was built on Obs's registry).
	Cache *cache.Cache
	// Fault, when non-nil, runs every job against an unreliable
	// simulated LLM backend (chaos drills; see docs/RESILIENCE.md).
	Fault *llm.FaultProfile
	// LLMBackends, when non-empty, routes every job's reviews across a
	// multi-backend topology (docs/RESILIENCE.md "Backend topology").
	// The daemon builds ONE shared llm.MultiTransport, so breaker state,
	// the shared retry/hedge budget, and singleflight coalescing span
	// jobs and tenants. Mutually exclusive with Fault.
	LLMBackends []llm.BackendSpec
	// LLMHedgeAfter launches a hedged attempt on the next healthy
	// backend after this much silence from the preferred one (0 disables
	// hedging). Only meaningful with LLMBackends.
	LLMHedgeAfter time.Duration
	// Obs observes the daemon: job, queue and scheduler metrics, plus
	// every pipeline metric of every job, accumulate in its registry,
	// which /metrics serves. Nil disables observability (including
	// /metrics content).
	Obs *obs.Observer
	// Pprof, when true, exposes the Go runtime profiler under
	// /debug/pprof/ (docs/SERVICE.md). Off by default: the endpoints
	// leak operational detail and cost CPU while profiling, so they are
	// opt-in (cmd/wasabid's -pprof flag).
	Pprof bool
	// Log receives the daemon's structured events (log.go catalogs
	// them); cmd/wasabid builds it from -log-format/-log-level. Nil
	// discards.
	Log *slog.Logger
	// TraceRing bounds how many completed job traces the daemon retains
	// for GET /v1/jobs/{id}/trace (oldest evicted first). Zero means
	// DefaultTraceRing.
	TraceRing int
	// Corpus, when non-empty, replaces the built-in seed corpus as the
	// population jobs analyze — cmd/wasabid builds it from a generated
	// corpus root (-corpus, docs/CORPUSGEN.md). Analyze requests resolve
	// their app codes against this set.
	Corpus []corpus.App
}

// Server is the analysis daemon. Create with New, run with Start, stop
// with Shutdown.
type Server struct {
	cfg  Config
	obs  *obs.Observer
	http *http.Server
	ln   net.Listener
	// source is the daemon-lifetime snapshot store every job loads
	// corpus bytes through: content unchanged between jobs is never
	// re-parsed — and concurrent jobs over the same corpus parse each
	// file exactly once between them (per-entry sync.Once), which the
	// many-jobs race test pins (docs/PERFORMANCE.md).
	source *source.Store
	// sched fans submissions out to worker slots through per-tenant
	// fair queues (scheduler.go).
	sched *scheduler
	// runJob executes one job; it is s.run except in scheduler tests,
	// which substitute timed synthetic jobs to prove wall-clock overlap
	// and fairness without corpus noise.
	runJob func(*job)
	// log receives structured events (never nil; defaults to discard).
	log *slog.Logger
	// llmMulti and llmFlight are the daemon-lifetime multi-backend
	// transport and singleflight group (nil without LLMBackends): one of
	// each per process, shared by every job, so backend health outlives
	// jobs and identical concurrent reviews coalesce across tenants.
	llmMulti  *llm.MultiTransport
	llmFlight *llm.Flight
	// traces retains completed jobs' span trees (tracering.go).
	traces *traceRing
	// started is stamped by Start; server_uptime_seconds derives from it.
	started time.Time

	mu         sync.Mutex
	draining   bool
	nextID     int
	jobs       map[string]*job
	appReports map[string][]byte
}

// job is one queued analysis request and its outcome.
type job struct {
	id     string
	tenant string
	// traceID is the job's wire-visible trace identity, minted at
	// submission alongside the id; logs, spans and the trace index all
	// carry it, so external systems can join on either.
	traceID string
	apps    []corpus.App
	// submitted and started bound the queue-wait; started is stamped by
	// the scheduler when a slot picks the job.
	submitted time.Time
	started   time.Time

	// Guarded by Server.mu after submission.
	state  string // "queued" | "running" | "done" | "failed"
	err    string
	report []byte
	fresh  llm.Usage
}

// newTraceID mints a 64-bit random hex trace id.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not a reason to refuse work; the job id
		// stays the unique key in that case.
		return "trace-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.SchedulerSlots <= 0 {
		cfg.SchedulerSlots = runtime.GOMAXPROCS(0)
		if cfg.SchedulerSlots < 2 {
			cfg.SchedulerSlots = 2
		}
	}
	if cfg.TenantQuota <= 0 || cfg.TenantQuota > cfg.SchedulerSlots {
		cfg.TenantQuota = cfg.SchedulerSlots
	}
	log := cfg.Log
	if log == nil {
		log = discardLogger()
	}
	s := &Server{
		cfg:        cfg,
		obs:        cfg.Obs,
		log:        log,
		source:     source.NewStore(cfg.Obs.Reg()),
		jobs:       make(map[string]*job),
		appReports: make(map[string][]byte),
		traces:     newTraceRing(cfg.TraceRing, cfg.Obs.Reg()),
		sched:      newScheduler(cfg.SchedulerSlots, cfg.TenantQuota, cfg.QueueDepth, cfg.TenantPriority, cfg.Obs.Reg(), log),
	}
	s.runJob = s.run
	if len(cfg.LLMBackends) > 0 {
		lcfg := llm.DefaultConfig()
		lcfg.Backends = cfg.LLMBackends
		lcfg.HedgeAfter = cfg.LLMHedgeAfter
		lcfg.Log = log
		mt, err := llm.NewMultiTransport(lcfg)
		if err != nil {
			// Specs come from ParseBackends (cmd/wasabid validates the
			// flag); reaching here is programmer error.
			panic(err)
		}
		s.llmMulti = mt.Instrument(cfg.Obs.Reg())
		s.llmFlight = llm.NewFlight()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/reports/{app}", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.http = &http.Server{Handler: mux}
	s.obs.Reg().Gauge("server_queue_capacity").Set(float64(cfg.QueueDepth))
	s.obs.Reg().Gauge("wasabi_build_info", "version", Version, "go_version", runtime.Version()).Set(1)
	return s
}

// Start binds the listen address, launches the scheduler's worker slots
// and begins serving. It returns once the listener is bound; Addr
// reports the bound address (useful with ":0").
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.started = time.Now()
	s.sched.start(func(j *job) { s.runJob(j) })
	go s.http.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	s.log.Info(evServerStart, "addr", s.Addr(), "slots", s.cfg.SchedulerSlots, "version", Version)
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains the daemon: new submissions are refused (healthz turns
// 503 so load balancers stop routing), every accepted job — queued on
// any tenant or running on any slot — runs to completion, then the HTTP
// listener closes. The context bounds the wait; on expiry the listener
// is closed anyway and the error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.log.Info(evServerDrain)
	s.sched.drain()
	var err error
	select {
	case <-s.sched.done:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.http.Close()
	uptime := 0.0
	if !s.started.IsZero() {
		uptime = time.Since(s.started).Seconds()
	}
	s.log.Info(evServerStop, "uptime_s", uptime)
	return err
}

// run executes one job through the pipeline. Multiple runs execute
// concurrently (one per busy slot); everything they share — cache,
// snapshot store, registry — is goroutine-safe, and per-job state lives
// in the job's own core.Wasabi instance.
//
// Observability scoping: the job gets a *private* tracer anchored at
// submission — so queue-wait is the first span of its own trace — with
// the job's correlation identity stamped on every span, while metrics
// keep flowing into the shared daemon registry. The pipeline's root
// "corpus" span is re-parented under the job's "run" span
// (SetRootParent), producing one connected tree per job: job →
// queue-wait + run → corpus → app → stages → per-file reviews.
func (s *Server) run(j *job) {
	s.mu.Lock()
	j.state = "running"
	s.mu.Unlock()
	start := time.Now()
	s.logJob(evJobStart, j, "queue_wait_ms", durMS(start.Sub(j.submitted)))

	tr := obs.NewTracerAt(j.submitted)
	tr.SetProcessName("wasabid " + j.id)
	tr.SetCommonArgs("job_id", j.id, "tenant", j.tenant, "trace_id", j.traceID)
	tr.SetRootParent("run")

	opts := core.DefaultOptions()
	opts.Workers = s.cfg.PipelineWorkers
	opts.Obs = s.obs.WithTracer(tr)
	opts.Cache = s.cfg.Cache
	opts.Source = s.source
	switch {
	case s.llmMulti != nil:
		// Backends is set alongside Multi so the per-job client's
		// fingerprint reflects the topology; the shared transport and
		// flight group carry the cross-job state.
		opts.LLM.Backends = s.cfg.LLMBackends
		opts.LLM.HedgeAfter = s.cfg.LLMHedgeAfter
		opts.LLM.Multi = s.llmMulti
		opts.LLM.Flight = s.llmFlight
		opts.LLM.Log = s.log
	case s.cfg.Fault != nil:
		opts.LLM.Fault = s.cfg.Fault
	}
	w := core.New(opts)
	cr, err := w.RunCorpus(j.apps)

	// Build and marshal outside the server lock; only state publication
	// needs it.
	var data []byte
	appData := map[string][]byte{}
	if err == nil {
		doc := report.Build(cr)
		if data, err = report.Marshal(doc); err == nil {
			for _, app := range doc.Apps {
				if d, aerr := report.MarshalApp(app); aerr == nil {
					appData[app.Code] = d
				}
			}
		}
	}

	end := time.Now()
	state := "done"
	if err != nil {
		state = "failed"
	}
	fresh := w.LLMUsage()

	// Close out the job's span tree with the scheduler-side envelope
	// spans the pipeline could not see, then freeze it into the ring.
	tr.Record("queue-wait", "sched", j.submitted, start, "parent", "job")
	tr.Record("run", "sched", start, end, "parent", "job")
	tr.Record("job", "job", j.submitted, end, "state", state,
		"fresh_tokens", fmt.Sprintf("%d", fresh.TokensIn))
	var traceBuf bytes.Buffer
	tr.WriteJSON(&traceBuf) //nolint:errcheck // bytes.Buffer cannot fail
	s.traces.put(traceMeta{
		JobID: j.id, Tenant: j.tenant, TraceID: j.traceID, State: state,
		Spans: tr.SpanCount(), DurationMS: durMS(end.Sub(j.submitted)),
	}, traceBuf.Bytes())

	// Tenant cost attribution. server_tenant_llm_tokens_total counts the
	// same event as llm_tokens_in_total — a fresh (uncached, undegraded)
	// review charging the backend — just keyed by who asked, so summing
	// it across live tenants plus the "_retired" fold (eviction moves a
	// leaving tenant's counts there; scheduler.go) equals the fleet
	// counter's growth exactly. Singleflight followers preserve the
	// invariant for free: a coalesced review never runs the charging
	// path, so the leader's tenant pays and the follower adds zero.
	reg := s.obs.Reg()
	reg.Counter("server_tenant_llm_tokens_total", "tenant", j.tenant).Add(fresh.TokensIn)
	reg.Histogram("server_tenant_job_ms", obs.LatencyBuckets, "tenant", j.tenant).Observe(durMS(end.Sub(start)))

	if err == nil {
		if n := len(cr.DegradedFiles()); n > 0 {
			s.logJob(evJobDegraded, j, "degraded_files", n)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	reg.Histogram("server_job_ms", obs.LatencyBuckets).Observe(durMS(end.Sub(start)))
	if err != nil {
		j.state, j.err = "failed", err.Error()
		reg.Counter("server_jobs_total", "status", "failed").Inc()
		s.logJob(evJobFinish, j, "state", state, "run_ms", durMS(end.Sub(start)), "error", err.Error())
		return
	}
	j.report = data
	for code, d := range appData {
		s.appReports[code] = d
	}
	j.state = "done"
	j.fresh = fresh
	reg.Counter("server_jobs_total", "status", "done").Inc()
	s.logJob(evJobFinish, j, "state", state, "run_ms", durMS(end.Sub(start)),
		"fresh_tokens", fresh.TokensIn, "spans", tr.SpanCount())
}

// durMS renders a duration as float milliseconds (the unit every
// latency histogram and log field uses).
func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// analyzeRequest is the POST /v1/analyze body.
type analyzeRequest struct {
	// Apps lists corpus short codes; empty means the full corpus.
	Apps []string `json:"apps"`
	// Tenant keys the submission to a fair queue (docs/SCHEDULING.md).
	// Empty means DefaultTenant, which keeps pre-tenancy clients working.
	Tenant string `json:"tenant"`
}

// jobView is the wire shape of a job (also the POST /v1/analyze
// response, minus report).
type jobView struct {
	ID      string   `json:"id"`
	State   string   `json:"state"`
	Tenant  string   `json:"tenant"`
	TraceID string   `json:"trace_id"`
	Apps    []string `json:"apps"`
	Error   string   `json:"error,omitempty"`
	// FreshLLM is the LLM traffic the job actually generated — zero for
	// a fully cache-served run, unlike the report's attributed usage.
	FreshLLM *freshUsage `json:"fresh_llm,omitempty"`
	// Report is the canonical JSON document (internal/report), present
	// once the job is done.
	Report json.RawMessage `json:"report,omitempty"`
}

// freshUsage is llm.Usage with stable JSON keys.
type freshUsage struct {
	Calls    int     `json:"calls"`
	TokensIn int64   `json:"tokens_in"`
	CostUSD  float64 `json:"cost_usd"`
}

// resolveApps maps request app codes onto the daemon's population: the
// configured Corpus when one was injected, the built-in seed corpus
// otherwise. Empty codes mean the whole population.
func (s *Server) resolveApps(codes []string) ([]corpus.App, error) {
	if len(s.cfg.Corpus) == 0 {
		if len(codes) == 0 {
			return corpus.Apps(), nil
		}
		apps := make([]corpus.App, 0, len(codes))
		for _, code := range codes {
			app, err := corpus.ByCode(code)
			if err != nil {
				return nil, err
			}
			apps = append(apps, app)
		}
		return apps, nil
	}
	if len(codes) == 0 {
		return s.cfg.Corpus, nil
	}
	byCode := make(map[string]corpus.App, len(s.cfg.Corpus))
	for _, app := range s.cfg.Corpus {
		byCode[app.Code] = app
	}
	apps := make([]corpus.App, 0, len(codes))
	for _, code := range codes {
		app, ok := byCode[code]
		if !ok {
			return nil, fmt.Errorf("unknown app code %q in the configured corpus", code)
		}
		apps = append(apps, app)
	}
	return apps, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	var req analyzeRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
	}
	tenant := strings.TrimSpace(req.Tenant)
	if tenant == "" {
		tenant = DefaultTenant
	}
	if len(tenant) > maxTenantLen {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("tenant name longer than %d bytes", maxTenantLen))
		return
	}
	if strings.HasPrefix(tenant, "_") {
		// "_"-prefixed names are reserved for server-side aggregates (the
		// "_retired" eviction fold); a tenant squatting one would corrupt
		// the cost-attribution series.
		httpError(w, http.StatusBadRequest, "tenant names starting with _ are reserved")
		return
	}
	apps, err := s.resolveApps(req.Apps)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.obs.Reg().Counter("server_jobs_total", "status", "rejected").Inc()
		s.log.Info(evJobRejected, "tenant", tenant, "reason", "draining", "status", http.StatusServiceUnavailable)
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.nextID),
		tenant:    tenant,
		traceID:   newTraceID(),
		apps:      apps,
		submitted: time.Now(),
		state:     "queued",
	}
	queued, err := s.sched.enqueue(j)
	if err != nil {
		s.nextID-- // not accepted: reuse the id
		s.mu.Unlock()
		s.obs.Reg().Counter("server_jobs_total", "status", "rejected").Inc()
		if err == errDraining {
			s.log.Info(evJobRejected, "tenant", tenant, "reason", "draining", "status", http.StatusServiceUnavailable)
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		s.log.Info(evJobRejected, "tenant", tenant, "reason", "queue-full", "status", http.StatusTooManyRequests)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "tenant job queue full")
		return
	}
	s.jobs[j.id] = j
	view := s.viewLocked(j, false)
	s.mu.Unlock()

	s.obs.Reg().Counter("server_jobs_total", "status", "accepted").Inc()
	s.logJob(evJobAccepted, j, "apps", len(apps), "queue_depth", queued)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	view := s.viewLocked(j, true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// viewLocked renders a job's wire shape; s.mu must be held.
func (s *Server) viewLocked(j *job, includeReport bool) jobView {
	v := jobView{ID: j.id, State: j.state, Tenant: j.tenant, TraceID: j.traceID, Error: j.err}
	for _, app := range j.apps {
		v.Apps = append(v.Apps, app.Code)
	}
	if j.state == "done" {
		v.FreshLLM = &freshUsage{Calls: j.fresh.Calls, TokensIn: j.fresh.TokensIn, CostUSD: j.fresh.CostUSD}
		if includeReport {
			v.Report = j.report
		}
	}
	return v
}

// handleJobTrace serves a completed job's span tree as Chrome
// trace-event JSON (open it in Perfetto / about://tracing as-is). Traces
// exist only for completed jobs still inside the bounded ring; the 404
// message distinguishes "not finished yet" from "evicted or unknown".
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, ok := s.traces.get(id)
	if !ok {
		s.mu.Lock()
		j, known := s.jobs[id]
		state := ""
		if known {
			state = j.state
		}
		s.mu.Unlock()
		if known && (state == "queued" || state == "running") {
			httpError(w, http.StatusNotFound, "trace not available until the job completes")
			return
		}
		httpError(w, http.StatusNotFound, "no trace retained for job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleTraces serves the trace ring's index, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.traces.index()})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	data, ok := s.appReports[r.PathValue("app")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no completed report for app")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// schedQuantiles is the percentile set /metrics summarizes the
// scheduler's wait/run histograms at.
var schedQuantiles = []float64{0.5, 0.9, 0.99}

// addSchedSummaries derives quantile gauges from the scheduler's latency
// histograms and inserts them into the snapshot (sorted, so the
// exposition stays deterministic for a given snapshot). The source
// histograms carry wall-clock facts, so the values vary run to run; only
// their presence and ordering are stable.
func addSchedSummaries(snap *obs.Snapshot) {
	for _, name := range []string{"server_sched_job_wait_ms", "server_sched_job_run_ms"} {
		h, ok := snap.HistogramPoint(name)
		if !ok || h.Count == 0 {
			continue
		}
		for _, q := range schedQuantiles {
			snap.AddGauge(name+"_quantile", h.Quantile(q), "q", fmt.Sprintf("%.2f", q))
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.obs.Reg().Snapshot()
	addSchedSummaries(&snap)
	// Uptime is derived at render time rather than kept as mutable
	// registry state nothing else reads (same pattern as the scheduler
	// quantiles).
	if !s.started.IsZero() {
		snap.AddGauge("server_uptime_seconds", time.Since(s.started).Seconds())
	}
	obs.WriteText(w, snap) //nolint:errcheck // client gone
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeJSON writes v as indented JSON.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(data, '\n'))
}
