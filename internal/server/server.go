// Package server is WASABI-as-a-service: the HTTP front end that turns
// the one-shot batch pipeline into a long-running analysis daemon
// (cmd/wasabid). The paper prices a single batch run at ~2,600 GPT-4
// calls and ~$8 per app (§4.3); serving re-analysis behind the
// content-addressed cache (internal/cache) makes the steady state
// incremental instead — an unchanged corpus re-analyzes with zero fresh
// LLM spend, and a one-file change re-reviews one file.
//
// Surface (docs/SERVICE.md is the full reference):
//
//	POST /v1/analyze        submit an analysis job (tenant queue full → 429)
//	GET  /v1/jobs/{id}      job status, and the canonical JSON report when done
//	GET  /v1/reports/{app}  latest completed report section for one app
//	GET  /healthz           liveness (503 while draining)
//	GET  /metrics           Prometheus text exposition of the registry
//
// Jobs execute concurrently on Config.SchedulerSlots worker slots fed by
// per-tenant fair queues (scheduler.go, docs/SCHEDULING.md): every
// submission carries a tenant key (default DefaultTenant), tenants are
// served weighted round-robin under per-tenant in-flight quotas, and a
// full tenant queue answers 429 without affecting other tenants.
// Concurrency *inside* a job (core.Options.Workers) stays bounded and
// deterministic; every job shares the server's cache, snapshot store and
// metrics registry. Shutdown is a graceful drain: accepted jobs (queued
// or running) complete, new submissions are refused, and only then does
// the listener stop.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"time"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/cache"
	"wasabi/internal/core"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/report"
	"wasabi/internal/source"
)

// DefaultTenant is the tenant key of submissions that name none — the
// pre-tenancy API shape keeps working and lands in one shared queue.
const DefaultTenant = "shared"

// maxTenantLen bounds tenant names; they become metric label values, so
// unbounded attacker-chosen strings would bloat the registry.
const maxTenantLen = 64

// Config tunes the daemon.
type Config struct {
	// Addr is the listen address ("host:port"; ":0" picks a free port).
	Addr string
	// QueueDepth bounds each tenant's job queue; submissions beyond it
	// are refused with 429 for that tenant only. Zero means 8.
	QueueDepth int
	// SchedulerSlots is how many jobs run concurrently (the worker slot
	// count of the scheduler). Zero derives from the host: GOMAXPROCS,
	// floored at 2 so tenants overlap even on one core (job runtime is
	// not purely CPU-bound once the cache and disk tiers are warm).
	SchedulerSlots int
	// TenantQuota caps how many slots one tenant may occupy at once.
	// Zero means SchedulerSlots (a lone tenant may use every slot; set
	// it lower to guarantee idle headroom for late arrivals).
	TenantQuota int
	// TenantPriority maps tenant name → round-robin weight (≥1). A
	// tenant with weight w gets up to w consecutive picks per scheduling
	// cycle; unlisted tenants weigh 1. See docs/SCHEDULING.md.
	TenantPriority map[string]int
	// PipelineWorkers is core.Options.Workers for every job (0 = one per
	// CPU).
	PipelineWorkers int
	// Cache, when non-nil, is shared by every job (and its hit/miss
	// counters appear in /metrics when it was built on Obs's registry).
	Cache *cache.Cache
	// Fault, when non-nil, runs every job against an unreliable
	// simulated LLM backend (chaos drills; see docs/RESILIENCE.md).
	Fault *llm.FaultProfile
	// Obs observes the daemon: job, queue and scheduler metrics, plus
	// every pipeline metric of every job, accumulate in its registry,
	// which /metrics serves. Nil disables observability (including
	// /metrics content).
	Obs *obs.Observer
	// Pprof, when true, exposes the Go runtime profiler under
	// /debug/pprof/ (docs/SERVICE.md). Off by default: the endpoints
	// leak operational detail and cost CPU while profiling, so they are
	// opt-in (cmd/wasabid's -pprof flag).
	Pprof bool
}

// Server is the analysis daemon. Create with New, run with Start, stop
// with Shutdown.
type Server struct {
	cfg  Config
	obs  *obs.Observer
	http *http.Server
	ln   net.Listener
	// source is the daemon-lifetime snapshot store every job loads
	// corpus bytes through: content unchanged between jobs is never
	// re-parsed — and concurrent jobs over the same corpus parse each
	// file exactly once between them (per-entry sync.Once), which the
	// many-jobs race test pins (docs/PERFORMANCE.md).
	source *source.Store
	// sched fans submissions out to worker slots through per-tenant
	// fair queues (scheduler.go).
	sched *scheduler
	// runJob executes one job; it is s.run except in scheduler tests,
	// which substitute timed synthetic jobs to prove wall-clock overlap
	// and fairness without corpus noise.
	runJob func(*job)

	mu         sync.Mutex
	draining   bool
	nextID     int
	jobs       map[string]*job
	appReports map[string][]byte
}

// job is one queued analysis request and its outcome.
type job struct {
	id     string
	tenant string
	apps   []corpus.App
	// submitted and started bound the queue-wait; started is stamped by
	// the scheduler when a slot picks the job.
	submitted time.Time
	started   time.Time

	// Guarded by Server.mu after submission.
	state  string // "queued" | "running" | "done" | "failed"
	err    string
	report []byte
	fresh  llm.Usage
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.SchedulerSlots <= 0 {
		cfg.SchedulerSlots = runtime.GOMAXPROCS(0)
		if cfg.SchedulerSlots < 2 {
			cfg.SchedulerSlots = 2
		}
	}
	if cfg.TenantQuota <= 0 || cfg.TenantQuota > cfg.SchedulerSlots {
		cfg.TenantQuota = cfg.SchedulerSlots
	}
	s := &Server{
		cfg:        cfg,
		obs:        cfg.Obs,
		source:     source.NewStore(cfg.Obs.Reg()),
		jobs:       make(map[string]*job),
		appReports: make(map[string][]byte),
		sched:      newScheduler(cfg.SchedulerSlots, cfg.TenantQuota, cfg.QueueDepth, cfg.TenantPriority, cfg.Obs.Reg()),
	}
	s.runJob = s.run
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/reports/{app}", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.http = &http.Server{Handler: mux}
	s.obs.Reg().Gauge("server_queue_capacity").Set(float64(cfg.QueueDepth))
	return s
}

// Start binds the listen address, launches the scheduler's worker slots
// and begins serving. It returns once the listener is bound; Addr
// reports the bound address (useful with ":0").
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.sched.start(func(j *job) { s.runJob(j) })
	go s.http.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains the daemon: new submissions are refused (healthz turns
// 503 so load balancers stop routing), every accepted job — queued on
// any tenant or running on any slot — runs to completion, then the HTTP
// listener closes. The context bounds the wait; on expiry the listener
// is closed anyway and the error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.sched.drain()
	var err error
	select {
	case <-s.sched.done:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.http.Close()
	return err
}

// run executes one job through the pipeline. Multiple runs execute
// concurrently (one per busy slot); everything they share — cache,
// snapshot store, registry — is goroutine-safe, and per-job state lives
// in the job's own core.Wasabi instance.
func (s *Server) run(j *job) {
	s.mu.Lock()
	j.state = "running"
	s.mu.Unlock()
	start := time.Now()

	opts := core.DefaultOptions()
	opts.Workers = s.cfg.PipelineWorkers
	opts.Obs = s.obs
	opts.Cache = s.cfg.Cache
	opts.Source = s.source
	if s.cfg.Fault != nil {
		opts.LLM.Fault = s.cfg.Fault
	}
	w := core.New(opts)
	cr, err := w.RunCorpus(j.apps)

	// Build and marshal outside the server lock; only state publication
	// needs it.
	var data []byte
	appData := map[string][]byte{}
	if err == nil {
		doc := report.Build(cr)
		if data, err = report.Marshal(doc); err == nil {
			for _, app := range doc.Apps {
				if d, aerr := report.MarshalApp(app); aerr == nil {
					appData[app.Code] = d
				}
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.Reg().Histogram("server_job_ms", obs.LatencyBuckets).Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		j.state, j.err = "failed", err.Error()
		s.obs.Reg().Counter("server_jobs_total", "status", "failed").Inc()
		return
	}
	j.report = data
	for code, d := range appData {
		s.appReports[code] = d
	}
	j.state = "done"
	j.fresh = w.LLMUsage()
	s.obs.Reg().Counter("server_jobs_total", "status", "done").Inc()
}

// analyzeRequest is the POST /v1/analyze body.
type analyzeRequest struct {
	// Apps lists corpus short codes; empty means the full corpus.
	Apps []string `json:"apps"`
	// Tenant keys the submission to a fair queue (docs/SCHEDULING.md).
	// Empty means DefaultTenant, which keeps pre-tenancy clients working.
	Tenant string `json:"tenant"`
}

// jobView is the wire shape of a job (also the POST /v1/analyze
// response, minus report).
type jobView struct {
	ID     string   `json:"id"`
	State  string   `json:"state"`
	Tenant string   `json:"tenant"`
	Apps   []string `json:"apps"`
	Error  string   `json:"error,omitempty"`
	// FreshLLM is the LLM traffic the job actually generated — zero for
	// a fully cache-served run, unlike the report's attributed usage.
	FreshLLM *freshUsage `json:"fresh_llm,omitempty"`
	// Report is the canonical JSON document (internal/report), present
	// once the job is done.
	Report json.RawMessage `json:"report,omitempty"`
}

// freshUsage is llm.Usage with stable JSON keys.
type freshUsage struct {
	Calls    int     `json:"calls"`
	TokensIn int64   `json:"tokens_in"`
	CostUSD  float64 `json:"cost_usd"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	var req analyzeRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
	}
	tenant := strings.TrimSpace(req.Tenant)
	if tenant == "" {
		tenant = DefaultTenant
	}
	if len(tenant) > maxTenantLen {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("tenant name longer than %d bytes", maxTenantLen))
		return
	}
	apps := corpus.Apps()
	if len(req.Apps) > 0 {
		apps = make([]corpus.App, 0, len(req.Apps))
		for _, code := range req.Apps {
			app, err := corpus.ByCode(code)
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			apps = append(apps, app)
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.obs.Reg().Counter("server_jobs_total", "status", "rejected").Inc()
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.nextID),
		tenant:    tenant,
		apps:      apps,
		submitted: time.Now(),
		state:     "queued",
	}
	if err := s.sched.enqueue(j); err != nil {
		s.nextID-- // not accepted: reuse the id
		s.mu.Unlock()
		s.obs.Reg().Counter("server_jobs_total", "status", "rejected").Inc()
		if err == errDraining {
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "tenant job queue full")
		return
	}
	s.jobs[j.id] = j
	view := s.viewLocked(j, false)
	s.mu.Unlock()

	s.obs.Reg().Counter("server_jobs_total", "status", "accepted").Inc()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	view := s.viewLocked(j, true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// viewLocked renders a job's wire shape; s.mu must be held.
func (s *Server) viewLocked(j *job, includeReport bool) jobView {
	v := jobView{ID: j.id, State: j.state, Tenant: j.tenant, Error: j.err}
	for _, app := range j.apps {
		v.Apps = append(v.Apps, app.Code)
	}
	if j.state == "done" {
		v.FreshLLM = &freshUsage{Calls: j.fresh.Calls, TokensIn: j.fresh.TokensIn, CostUSD: j.fresh.CostUSD}
		if includeReport {
			v.Report = j.report
		}
	}
	return v
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	data, ok := s.appReports[r.PathValue("app")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no completed report for app")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// schedQuantiles is the percentile set /metrics summarizes the
// scheduler's wait/run histograms at.
var schedQuantiles = []float64{0.5, 0.9, 0.99}

// addSchedSummaries derives quantile gauges from the scheduler's latency
// histograms and inserts them into the snapshot (sorted, so the
// exposition stays deterministic for a given snapshot). The source
// histograms carry wall-clock facts, so the values vary run to run; only
// their presence and ordering are stable.
func addSchedSummaries(snap *obs.Snapshot) {
	for _, name := range []string{"server_sched_job_wait_ms", "server_sched_job_run_ms"} {
		h, ok := snap.HistogramPoint(name)
		if !ok || h.Count == 0 {
			continue
		}
		for _, q := range schedQuantiles {
			snap.AddGauge(name+"_quantile", h.Quantile(q), "q", fmt.Sprintf("%.2f", q))
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.obs.Reg().Snapshot()
	addSchedSummaries(&snap)
	obs.WriteText(w, snap) //nolint:errcheck // client gone
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeJSON writes v as indented JSON.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(data, '\n'))
}
