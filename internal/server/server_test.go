package server

// server_test.go covers the HTTP surface deterministically by driving
// the mux directly: New() builds the handler and the bounded queue but
// only Start() launches the runner, so backpressure and drain states
// can be pinned without racing a live job executor.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wasabi/internal/obs"
)

// do issues one request against the server's handler.
func do(s *Server, method, path, body string) *httptest.ResponseRecorder {
	var r *httptest.ResponseRecorder = httptest.NewRecorder()
	var req = httptest.NewRequest(method, path, strings.NewReader(body))
	s.http.Handler.ServeHTTP(r, req)
	return r
}

func TestAnalyzeValidation(t *testing.T) {
	s := New(Config{QueueDepth: 4})
	if rec := do(s, "POST", "/v1/analyze", `{"apps":["NOPE"]}`); rec.Code != 400 {
		t.Fatalf("unknown app: status = %d, want 400", rec.Code)
	}
	if rec := do(s, "POST", "/v1/analyze", `{"apps":`); rec.Code != 400 {
		t.Fatalf("malformed body: status = %d, want 400", rec.Code)
	}
	if rec := do(s, "POST", "/v1/analyze", `{"tenant":"_retired"}`); rec.Code != 400 {
		t.Fatalf("reserved tenant: status = %d, want 400 (underscore names are aggregates)", rec.Code)
	}
	if rec := do(s, "POST", "/v1/analyze", `{"tenant":"_anything"}`); rec.Code != 400 {
		t.Fatalf("underscore tenant: status = %d, want 400", rec.Code)
	}
	rec := do(s, "POST", "/v1/analyze", `{"apps":["HD"]}`)
	if rec.Code != 202 {
		t.Fatalf("valid submit: status = %d, want 202", rec.Code)
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/jobs/job-1" {
		t.Fatalf("Location = %q", loc)
	}
	var v jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.ID != "job-1" || v.State != "queued" || len(v.Apps) != 1 || v.Apps[0] != "HD" {
		t.Fatalf("accepted view = %+v", v)
	}
}

func TestLookupsReturn404(t *testing.T) {
	s := New(Config{})
	if rec := do(s, "GET", "/v1/jobs/job-99", ""); rec.Code != 404 {
		t.Fatalf("unknown job: status = %d, want 404", rec.Code)
	}
	if rec := do(s, "GET", "/v1/reports/HD", ""); rec.Code != 404 {
		t.Fatalf("no completed report: status = %d, want 404", rec.Code)
	}
}

// TestQueueBackpressure fills one tenant's bounded queue (no workers
// draining it) and expects 429 with Retry-After once it is full — while
// a different tenant still submits freely.
func TestQueueBackpressure(t *testing.T) {
	reg := obs.New()
	s := New(Config{QueueDepth: 2, Obs: reg})
	for i := 0; i < 2; i++ {
		if rec := do(s, "POST", "/v1/analyze", `{"tenant":"alpha"}`); rec.Code != 202 {
			t.Fatalf("submit %d: status = %d, want 202", i, rec.Code)
		}
	}
	rec := do(s, "POST", "/v1/analyze", `{"tenant":"alpha"}`)
	if rec.Code != 429 {
		t.Fatalf("over-capacity submit: status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Backpressure is per tenant: the same body under another tenant key
	// (or none — the shared default tenant) is still accepted, and the
	// rejected submission must not have burned a job id.
	if rec := do(s, "POST", "/v1/analyze", `{"tenant":"beta"}`); rec.Code != 202 {
		t.Fatalf("other-tenant submit during alpha backpressure: status = %d, want 202", rec.Code)
	} else if loc := rec.Header().Get("Location"); loc != "/v1/jobs/job-3" {
		t.Fatalf("Location after reject = %q, want /v1/jobs/job-3", loc)
	}
	if rec := do(s, "POST", "/v1/analyze", ""); rec.Code != 202 {
		t.Fatalf("default-tenant submit: status = %d, want 202", rec.Code)
	}

	snap := reg.Reg().Snapshot()
	if got := snap.Counter("server_jobs_total", "status", "accepted"); got != 4 {
		t.Fatalf("accepted = %d, want 4", got)
	}
	if got := snap.Counter("server_jobs_total", "status", "rejected"); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	if got := snap.Counter("server_sched_rejections_total", "tenant", "alpha"); got != 1 {
		t.Fatalf("alpha rejections = %d, want 1", got)
	}
	// The queue-depth gauges move at enqueue time, not only when a
	// worker dequeues — /metrics must never read stale between jobs.
	assertGauge(t, snap, "server_queue_depth", nil, 4)
	assertGauge(t, snap, "server_sched_queue_depth", []string{"tenant", "alpha"}, 2)
	assertGauge(t, snap, "server_sched_queue_depth", []string{"tenant", "beta"}, 1)
	assertGauge(t, snap, "server_sched_queue_depth", []string{"tenant", DefaultTenant}, 1)
}

// assertGauge fails unless the snapshot holds the named gauge at want.
func assertGauge(t *testing.T, snap obs.Snapshot, name string, labels []string, want float64) {
	t.Helper()
	for _, g := range snap.Gauges {
		if g.Name != name {
			continue
		}
		match := len(labels) == 0 && len(g.Labels) == 0
		if len(labels) == 2 && len(g.Labels) == 1 &&
			g.Labels[0].Key == labels[0] && g.Labels[0].Value == labels[1] {
			match = true
		}
		if match {
			if g.Value != want {
				t.Fatalf("%s%v = %v, want %v", name, labels, g.Value, want)
			}
			return
		}
	}
	t.Fatalf("gauge %s%v not in snapshot", name, labels)
}

// TestTenantValidation pins the tenant-field admission rules.
func TestTenantValidation(t *testing.T) {
	s := New(Config{})
	long := strings.Repeat("x", maxTenantLen+1)
	if rec := do(s, "POST", "/v1/analyze", `{"tenant":"`+long+`"}`); rec.Code != 400 {
		t.Fatalf("oversized tenant: status = %d, want 400", rec.Code)
	}
	rec := do(s, "POST", "/v1/analyze", `{"tenant":"  "}`)
	if rec.Code != 202 {
		t.Fatalf("blank tenant: status = %d, want 202", rec.Code)
	}
	var v jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Tenant != DefaultTenant {
		t.Fatalf("blank tenant mapped to %q, want %q", v.Tenant, DefaultTenant)
	}
}

func TestDrainingRefusesWork(t *testing.T) {
	s := New(Config{})
	if rec := do(s, "GET", "/healthz", ""); rec.Code != 200 {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if rec := do(s, "GET", "/healthz", ""); rec.Code != 503 {
		t.Fatalf("draining healthz = %d, want 503", rec.Code)
	}
	if rec := do(s, "POST", "/v1/analyze", ""); rec.Code != 503 {
		t.Fatalf("draining submit = %d, want 503", rec.Code)
	}
}

func TestMetricsContentType(t *testing.T) {
	reg := obs.New()
	reg.Reg().Counter("example_total").Inc()
	s := New(Config{Obs: reg})
	rec := do(s, "GET", "/metrics", "")
	if rec.Code != 200 {
		t.Fatalf("metrics = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "example_total 1") {
		t.Fatalf("exposition missing sample:\n%s", rec.Body.String())
	}
}

// TestShutdownDrainsAcceptedJobs starts the real runner, submits a job,
// and verifies Shutdown completes it before returning.
func TestShutdownDrainsAcceptedJobs(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0", PipelineWorkers: 2})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	rec := do(s, "POST", "/v1/analyze", `{"apps":["HD"]}`)
	if rec.Code != 202 {
		t.Fatalf("submit = %d, want 202", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs["job-1"]
	if j == nil || j.state != "done" {
		t.Fatalf("accepted job not drained: %+v", j)
	}
	if len(j.report) == 0 {
		t.Fatal("drained job has no report")
	}
}
