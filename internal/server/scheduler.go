// scheduler.go is the daemon's concurrent multi-tenant job scheduler.
// The serial runner it replaces executed jobs one at a time off a single
// FIFO channel, so one slow corpus head-of-line-blocked every other
// caller — the §4.3 cost story (batch analysis is expensive, so serve it
// incrementally) only pays off if independent tenants can actually get
// served independently.
//
// Shape (docs/SCHEDULING.md is the full reference):
//
//   - Every tenant owns a bounded FIFO queue; submission is admission to
//     the tenant's queue (full → 429 for that tenant only).
//   - N worker slots (Config.SchedulerSlots) pull jobs through a
//     weighted round-robin pick over the tenants, so a tenant with a
//     deep backlog cannot starve one with a single queued job.
//   - A per-tenant in-flight quota (Config.TenantQuota) bounds how many
//     slots one tenant can occupy at once.
//   - Drain closes admission; every accepted job still runs to
//     completion before the workers exit.
//
// The pick order is deterministic given the queue states: tenants are
// kept sorted by name, the round-robin cursor advances predictably, and
// weights grant consecutive picks (a tenant with weight w gets up to w
// picks per replenish cycle). What is *not* deterministic is wall-clock
// interleaving — jobs genuinely overlap, which is the point. All shared
// state under the jobs (snapshot store, review cache, metrics registry)
// is goroutine-safe by construction; the many-jobs race test asserts the
// parse-once contract holds across concurrent jobs.
package server

import (
	"errors"
	"log/slog"
	"sort"
	"sync"
	"time"

	"wasabi/internal/obs"
)

// Admission errors returned by scheduler.enqueue.
var (
	errDraining  = errors.New("draining")
	errQueueFull = errors.New("tenant queue full")
)

// tenantQueue is one tenant's scheduling state: its FIFO backlog, its
// in-flight count against the quota, and its round-robin credit.
type tenantQueue struct {
	name string
	jobs []*job
	// inflight counts this tenant's jobs currently occupying slots.
	inflight int
	// weight is the priority knob: up to weight picks per credit cycle.
	weight int
	// credit is the remaining picks in the current cycle.
	credit int
}

// scheduler owns the per-tenant queues and the worker slots.
type scheduler struct {
	slots int
	quota int
	depth int
	// weights maps tenant name → round-robin weight (default 1).
	weights map[string]int
	reg     *obs.Registry
	log     *slog.Logger

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	// order keeps tenant names sorted so the round-robin sweep is
	// deterministic given the queue states.
	order   []string
	cursor  int
	queued  int
	busy    int
	busyMax int

	draining bool
	started  bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// newScheduler sizes the scheduler from a validated Config. log may be
// nil (tests); events then discard.
func newScheduler(slots, quota, depth int, weights map[string]int, reg *obs.Registry, log *slog.Logger) *scheduler {
	if log == nil {
		log = discardLogger()
	}
	s := &scheduler{
		slots:   slots,
		quota:   quota,
		depth:   depth,
		weights: weights,
		reg:     reg,
		log:     log,
		tenants: make(map[string]*tenantQueue),
		done:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	reg.Gauge("server_sched_slots").Set(float64(slots))
	reg.Gauge("server_sched_tenant_quota").Set(float64(quota))
	return s
}

// tenantLocked returns (creating if needed) the tenant's queue, keeping
// order sorted; s.mu must be held.
func (s *scheduler) tenantLocked(name string) *tenantQueue {
	if t := s.tenants[name]; t != nil {
		return t
	}
	w := s.weights[name]
	if w <= 0 {
		w = 1
	}
	t := &tenantQueue{name: name, weight: w, credit: w}
	s.tenants[name] = t
	i := sort.SearchStrings(s.order, name)
	s.order = append(s.order, "")
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = name
	if i <= s.cursor && len(s.order) > 1 {
		s.cursor++ // keep the cursor on the tenant it pointed at
	}
	return t
}

// enqueue admits a job to its tenant's queue, returning the tenant's
// resulting backlog depth. It returns errDraining after drain began and
// errQueueFull when the tenant's backlog is at capacity — callers map
// those to 503 and 429 respectively. The queue depth gauges move at
// enqueue time (not just at dequeue), so /metrics never reads a stale
// depth between jobs.
func (s *scheduler) enqueue(j *job) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, errDraining
	}
	t := s.tenantLocked(j.tenant)
	if len(t.jobs) >= s.depth {
		s.reg.Counter("server_sched_rejections_total", "tenant", t.name).Inc()
		return len(t.jobs), errQueueFull
	}
	t.jobs = append(t.jobs, j)
	s.queued++
	s.reg.Counter("server_sched_jobs_total", "tenant", t.name).Inc()
	s.depthGaugesLocked(t)
	s.cond.Signal()
	return len(t.jobs), nil
}

// depthGaugesLocked refreshes the per-tenant and aggregate queue-depth
// gauges; s.mu must be held.
func (s *scheduler) depthGaugesLocked(t *tenantQueue) {
	s.reg.Gauge("server_sched_queue_depth", "tenant", t.name).Set(float64(len(t.jobs)))
	s.reg.Gauge("server_queue_depth").Set(float64(s.queued))
}

// pickLocked selects the next runnable job by weighted round-robin:
// sweep the sorted tenants from the cursor, skipping empty queues,
// tenants at quota, and tenants out of credit; if only credit blocked
// the sweep, replenish every tenant's credit and sweep once more. A nil
// return means every queued job belongs to a tenant at quota (or nothing
// is queued). s.mu must be held.
func (s *scheduler) pickLocked() *job {
	if s.queued == 0 {
		return nil
	}
	for pass := 0; pass < 2; pass++ {
		n := len(s.order)
		for i := 0; i < n; i++ {
			idx := (s.cursor + i) % n
			t := s.tenants[s.order[idx]]
			if len(t.jobs) == 0 || t.inflight >= s.quota || t.credit <= 0 {
				continue
			}
			t.credit--
			if t.credit == 0 {
				s.cursor = (idx + 1) % n // cycle on; the next sweep starts past this tenant
			} else {
				s.cursor = idx // consecutive picks up to the weight
			}
			j := t.jobs[0]
			t.jobs = t.jobs[1:]
			s.queued--
			t.inflight++
			s.depthGaugesLocked(t)
			s.reg.Gauge("server_sched_tenant_inflight", "tenant", t.name).Set(float64(t.inflight))
			return j
		}
		for _, t := range s.tenants {
			t.credit = t.weight
		}
	}
	return nil
}

// start launches the worker slots; each runs jobs until drain completes.
func (s *scheduler) start(run func(*job)) {
	s.mu.Lock()
	s.started = true
	s.mu.Unlock()
	s.wg.Add(s.slots)
	for i := 0; i < s.slots; i++ {
		go func() {
			defer s.wg.Done()
			for {
				j := s.next()
				if j == nil {
					return
				}
				run(j)
				s.finish(j)
			}
		}()
	}
	go func() {
		s.wg.Wait()
		close(s.done)
	}()
}

// next blocks until a job is runnable or the drain has emptied the
// queues, in which case it returns nil and the worker exits.
func (s *scheduler) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.pickLocked(); j != nil {
			s.busy++
			if s.busy > s.busyMax {
				s.busyMax = s.busy
				s.reg.Gauge("server_sched_slots_busy_max").Set(float64(s.busyMax))
			}
			s.reg.Gauge("server_sched_slots_busy").Set(float64(s.busy))
			s.reg.Gauge("server_inflight_jobs").Set(float64(s.busy))
			j.started = time.Now()
			s.reg.Histogram("server_sched_job_wait_ms", obs.LatencyBuckets).
				Observe(float64(j.started.Sub(j.submitted)) / float64(time.Millisecond))
			return j
		}
		if s.draining && s.queued == 0 {
			return nil
		}
		s.cond.Wait()
	}
}

// finish releases the job's slot and quota share. It broadcasts because
// one completion can make several waiters runnable (a freed slot and a
// freed quota unit are different wake conditions). A tenant left with no
// backlog and no in-flight jobs is evicted on the spot.
func (s *scheduler) finish(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[j.tenant]
	t.inflight--
	s.busy--
	s.reg.Gauge("server_sched_tenant_inflight", "tenant", t.name).Set(float64(t.inflight))
	s.reg.Gauge("server_sched_slots_busy").Set(float64(s.busy))
	s.reg.Gauge("server_inflight_jobs").Set(float64(s.busy))
	s.reg.Histogram("server_sched_job_run_ms", obs.LatencyBuckets).
		Observe(float64(time.Since(j.started)) / float64(time.Millisecond))
	if len(t.jobs) == 0 && t.inflight == 0 {
		s.evictLocked(t)
	}
	s.cond.Broadcast()
}

// RetiredTenant is the reserved label value eviction folds a leaving
// tenant's monotonic counters into. handleAnalyze rejects "_"-prefixed
// tenant names, so no real tenant can collide with it.
const RetiredTenant = "_retired"

// evictLocked reclaims an idle tenant's observability state — the
// KNOWN_ISSUES "tenant state never reclaimed" fix, completed by the
// "counters outlive tenant eviction" follow-up: a daemon serving a long
// tail of one-shot tenants no longer accumulates a queue struct, a
// sorted-order slot, two gauges, three counter series and a histogram
// per tenant forever. State gauges are simply removed (a depth gauge
// for a tenant that isn't there would be a lie). Monotonic counters
// cannot just vanish — Prometheus-style sums must never go backwards —
// so they fold into the RetiredTenant series: sum-across-tenants
// invariants (e.g. tenant token spend vs the fleet's
// llm_tokens_in_total) keep holding over live tenants + "_retired".
// The per-tenant latency histogram is dropped outright; distributions
// have no meaningful fold. A returning tenant is re-created with fresh
// round-robin credit and restarts its series from zero, which is
// exactly what a brand-new tenant gets. s.mu must be held.
func (s *scheduler) evictLocked(t *tenantQueue) {
	delete(s.tenants, t.name)
	i := sort.SearchStrings(s.order, t.name)
	s.order = append(s.order[:i], s.order[i+1:]...)
	if s.cursor > i {
		s.cursor--
	}
	if len(s.order) > 0 {
		s.cursor %= len(s.order)
	} else {
		s.cursor = 0
	}
	s.reg.Counter("server_sched_tenant_evictions_total").Inc()
	s.reg.RemoveGauge("server_sched_queue_depth", "tenant", t.name)
	s.reg.RemoveGauge("server_sched_tenant_inflight", "tenant", t.name)
	for _, name := range []string{
		"server_sched_jobs_total",
		"server_sched_rejections_total",
		"server_tenant_llm_tokens_total",
	} {
		// One registry operation per family: a /metrics scrape landing
		// mid-eviction must see the source series or the grown _retired
		// aggregate, never the gap between.
		s.reg.FoldCounter(name, []string{"tenant", t.name}, []string{"tenant", RetiredTenant})
	}
	s.reg.RemoveHistogram("server_tenant_job_ms", "tenant", t.name)
	s.log.Info(evTenantEvicted, "tenant", t.name)
}

// drain closes admission and wakes every worker so they can exit once
// the backlog is empty. Accepted jobs keep running to completion. When
// the workers were never started there is nothing to wait for, so done
// closes immediately.
func (s *scheduler) drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	if !s.started {
		close(s.done)
	}
	s.cond.Broadcast()
}
