// version.go pins the daemon's release identity, surfaced three ways:
// the wasabid -version flag, the evServerStart log event, and the
// wasabi_build_info metric (§3.1.3 record-then-inspect applied to
// deployment provenance: a scrape should say what is running, not just
// how it behaves). Bumped per released PR.
package server

// Version is the wasabi release the daemon reports.
const Version = "0.7.0"
