package server

// sched_test.go pins the multi-tenant scheduler's contracts
// (docs/SCHEDULING.md):
//
//   - weighted round-robin pick order is deterministic given the queue
//     states (unit test over pickLocked);
//   - jobs genuinely overlap in wall-clock time — two timed jobs on two
//     slots finish in less than the sum of their serial runtimes;
//   - a slow tenant with a deep backlog cannot starve a fast tenant;
//   - M concurrent jobs over the same corpus share the daemon's snapshot
//     store: counter-exact parses (one per unique file) under -race, with
//     byte-identical reports, including a warm job afterwards.
//
// The timing tests substitute the job executor (Server.runJob) with
// sleep-timed synthetic jobs: on a one-core CI runner, real pipeline
// jobs are CPU-bound and cannot beat the serial wall-clock sum, but
// scheduler concurrency is about slots, not cores — sleeps prove it
// exactly.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/cache"
	"wasabi/internal/obs"
	"wasabi/internal/source"
)

// TestWeightedRoundRobinPickOrder drives pickLocked directly: tenant
// "a" at weight 2 and "b" at weight 1 must interleave a,a,b until a's
// backlog empties, then b drains.
func TestWeightedRoundRobinPickOrder(t *testing.T) {
	reg := obs.New().Reg()
	sc := newScheduler(1, 100, 100, map[string]int{"a": 2}, reg, nil)
	for i := 0; i < 6; i++ {
		if _, err := sc.enqueue(&job{tenant: "a", submitted: time.Now()}); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.enqueue(&job{tenant: "b", submitted: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	sc.mu.Lock()
	for {
		j := sc.pickLocked()
		if j == nil {
			break
		}
		got = append(got, j.tenant)
	}
	sc.mu.Unlock()
	want := "a a b a a b a a b b b b"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("pick order = %q, want %q", s, want)
	}
}

// TestTenantQuotaBoundsPicks: with every slot-worth of quota consumed,
// a tenant's queued jobs stay queued until one finishes.
func TestTenantQuotaBoundsPicks(t *testing.T) {
	reg := obs.New().Reg()
	sc := newScheduler(4, 1, 100, nil, reg, nil)
	for i := 0; i < 3; i++ {
		if _, err := sc.enqueue(&job{tenant: "a", submitted: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}
	sc.mu.Lock()
	first := sc.pickLocked()
	second := sc.pickLocked()
	sc.mu.Unlock()
	if first == nil {
		t.Fatal("first pick = nil, want a job")
	}
	if second != nil {
		t.Fatalf("second pick ran past the quota (inflight 1, quota 1)")
	}
	sc.finish(first)
	sc.mu.Lock()
	third := sc.pickLocked()
	sc.mu.Unlock()
	if third == nil {
		t.Fatal("pick after finish = nil, want the next queued job")
	}
}

// timedJobs installs a synthetic executor: each job sleeps its tenant's
// duration, and completions append to a shared order slice.
type timedJobs struct {
	mu    sync.Mutex
	order []string
	times map[string]time.Duration
	done  chan string
}

func installTimedJobs(s *Server, times map[string]time.Duration) *timedJobs {
	tj := &timedJobs{times: times, done: make(chan string, 64)}
	s.runJob = func(j *job) {
		time.Sleep(tj.times[j.tenant])
		tj.mu.Lock()
		tj.order = append(tj.order, j.tenant)
		tj.mu.Unlock()
		tj.done <- j.tenant
	}
	return tj
}

// submitTenant posts one analyze submission for a tenant and asserts
// acceptance.
func submitTenant(t *testing.T, s *Server, tenant, app string) {
	t.Helper()
	body := fmt.Sprintf(`{"apps":[%q],"tenant":%q}`, app, tenant)
	if rec := do(s, "POST", "/v1/analyze", body); rec.Code != 202 {
		t.Fatalf("submit %s: status = %d, want 202: %s", tenant, rec.Code, rec.Body.String())
	}
}

// TestJobsOverlapWallClock is the wall-clock concurrency proof: two
// jobs over different corpora, each 200ms serial, must complete in well
// under the 400ms serial sum on two slots.
func TestJobsOverlapWallClock(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0", SchedulerSlots: 2, Obs: obs.New()})
	tj := installTimedJobs(s, map[string]time.Duration{
		"hdfs-team":  200 * time.Millisecond,
		"hbase-team": 200 * time.Millisecond,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s)

	start := time.Now()
	submitTenant(t, s, "hdfs-team", "HD")
	submitTenant(t, s, "hbase-team", "HB")
	for i := 0; i < 2; i++ {
		select {
		case <-tj.done:
		case <-time.After(5 * time.Second):
			t.Fatal("jobs did not finish")
		}
	}
	elapsed := time.Since(start)
	serialSum := 400 * time.Millisecond
	if elapsed >= serialSum {
		t.Fatalf("elapsed %v >= serial sum %v: jobs did not overlap", elapsed, serialSum)
	}
	t.Logf("elapsed %v for 2×200ms jobs (serial sum %v)", elapsed, serialSum)
}

// TestSlowTenantCannotStarveFast: one slot, a slow tenant with a deep
// backlog submitted first, then one fast job. Round-robin must serve
// the fast tenant after at most the job already running plus one pick —
// not after the slow backlog drains.
func TestSlowTenantCannotStarveFast(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0", SchedulerSlots: 1, QueueDepth: 16, Obs: obs.New()})
	tj := installTimedJobs(s, map[string]time.Duration{
		"slow": 60 * time.Millisecond,
		"fast": 5 * time.Millisecond,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s)

	const slowJobs = 6
	for i := 0; i < slowJobs; i++ {
		submitTenant(t, s, "slow", "HD")
	}
	submitTenant(t, s, "fast", "HB")
	deadline := time.After(10 * time.Second)
	finished := 0
	fastAt := 0
	for fastAt == 0 {
		select {
		case tenant := <-tj.done:
			finished++
			if tenant == "fast" {
				fastAt = finished
			}
		case <-deadline:
			t.Fatal("fast job never finished")
		}
	}
	// The fast job may land behind the slow job already running and, at
	// worst, one more the scheduler picked before the submission landed.
	if fastAt > 3 {
		t.Fatalf("fast job finished %dth of %d: starved behind the slow backlog", fastAt, slowJobs+1)
	}
	t.Logf("fast job finished %dth", fastAt)
}

// shutdown drains a started server within a bounded wait.
func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// corpusSourceFiles counts the corpus's source files — the exact parse
// budget the shared snapshot store must not exceed.
func corpusSourceFiles(t *testing.T) int64 {
	t.Helper()
	var n int64
	for _, app := range corpus.Apps() {
		entries, err := os.ReadDir(app.Dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !e.IsDir() && source.IsSourceFile(e.Name()) {
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("corpus has no source files")
	}
	return n
}

// awaitJob polls a job through the mux until done, returning its report
// and fresh token spend.
func awaitJob(t *testing.T, s *Server, id string) (report []byte, freshTokens int64) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		rec := do(s, "GET", "/v1/jobs/"+id, "")
		if rec.Code != 200 {
			t.Fatalf("job %s: status %d", id, rec.Code)
		}
		var v struct {
			State    string          `json:"state"`
			Error    string          `json:"error"`
			Report   json.RawMessage `json:"report"`
			FreshLLM *struct {
				TokensIn int64 `json:"tokens_in"`
			} `json:"fresh_llm"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case "done":
			return v.Report, v.FreshLLM.TokensIn
		case "failed":
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil, 0
}

// TestConcurrentJobsShareSnapshotStore is the many-jobs race proof of
// the PR 5 claim: M concurrent full-corpus jobs against one daemon
// parse each unique source file exactly once *between them* (per-entry
// sync.Once in the shared store), produce byte-identical reports, and a
// warm job afterwards is still byte-identical at zero fresh spend.
func TestConcurrentJobsShareSnapshotStore(t *testing.T) {
	want := corpusSourceFiles(t)
	observer := obs.New()
	ca, err := cache.New(cache.Options{Metrics: observer.Reg()})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Addr:            "127.0.0.1:0",
		QueueDepth:      4,
		SchedulerSlots:  3,
		PipelineWorkers: 2,
		Cache:           ca,
		Obs:             observer,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s)

	const m = 3
	ids := make([]string, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"tenant":"tenant-%d"}`, i)
			rec := do(s, "POST", "/v1/analyze", body)
			if rec.Code != 202 {
				t.Errorf("submit %d: status = %d", i, rec.Code)
				return
			}
			var v struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	reports := make([][]byte, m)
	for i, id := range ids {
		reports[i], _ = awaitJob(t, s, id)
	}
	for i := 1; i < m; i++ {
		if !bytes.Equal(reports[0], reports[i]) {
			t.Fatalf("report %d differs from report 0 (%d vs %d bytes)", i, len(reports[i]), len(reports[0]))
		}
	}

	snap := observer.Reg().Snapshot()
	if got := snap.Counter("source_parse_total"); got != want {
		t.Fatalf("source_parse_total = %d across %d concurrent jobs, want exactly %d (one per unique file)", got, m, want)
	}
	if got := snap.Counter("source_derived_computes_total", "kind", "sast-extract"); got != want {
		t.Fatalf("sast extractions = %d, want exactly %d", got, want)
	}

	// A warm job after the concurrent burst: byte-identical report, zero
	// fresh spend, and still not one extra parse.
	rec := do(s, "POST", "/v1/analyze", `{"tenant":"late"}`)
	if rec.Code != 202 {
		t.Fatalf("warm submit: status = %d", rec.Code)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	warmReport, warmTokens := awaitJob(t, s, v.ID)
	if warmTokens != 0 {
		t.Fatalf("warm job spent %d fresh tokens, want 0", warmTokens)
	}
	if !bytes.Equal(warmReport, reports[0]) {
		t.Fatal("warm report differs from the concurrent cold reports")
	}
	if got := observer.Reg().Snapshot().Counter("source_parse_total"); got != want {
		t.Fatalf("source_parse_total after warm job = %d, want still %d", got, want)
	}
}
