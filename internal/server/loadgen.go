// loadgen.go is the scheduler's load driver: many simulated tenants
// hammering POST /v1/analyze over real HTTP, each riding the documented
// backpressure contract (429 → honor Retry-After → resubmit) until every
// job completes. cmd/loadgen wraps it as a CLI and cmd/benchreport
// embeds it to measure the BENCH_pipeline.json serve section against an
// in-process daemon (§4.3's cost accounting, extended to service
// throughput).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wasabi/internal/obs"
)

// LoadOptions shapes one load run.
type LoadOptions struct {
	// Tenants is how many simulated tenants submit (default 8); tenant i
	// submits as "tenant-i".
	Tenants int
	// Jobs is how many jobs each tenant submits (default 2).
	Jobs int
	// Apps is the corpus subset every job analyzes (short codes; empty =
	// full corpus).
	Apps []string
	// Timeout bounds the whole run (default 5m).
	Timeout time.Duration
}

// RunLoad drives base (a wasabid address, "http://host:port") with
// Tenants×Jobs analysis jobs and waits for all of them to complete.
// Submissions that hit per-tenant backpressure honor Retry-After and
// resubmit; the returned bench counts them in Rejections. The Slots,
// latency-quantile and busy-slot fields are left zero — when the
// caller owns the server's registry, AttachSchedStats fills them.
func RunLoad(base string, opt LoadOptions) (*obs.ServeBench, error) {
	if opt.Tenants <= 0 {
		opt.Tenants = 8
	}
	if opt.Jobs <= 0 {
		opt.Jobs = 2
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), opt.Timeout)
	defer cancel()

	body, err := json.Marshal(map[string]any{"apps": opt.Apps})
	if err != nil {
		return nil, err
	}

	var rejections atomic.Int64
	errs := make([]error, opt.Tenants)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opt.Tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", i)
			ids := make([]string, 0, opt.Jobs)
			for n := 0; n < opt.Jobs; n++ {
				id, err := submitUntilAccepted(ctx, base, tenant, body, &rejections)
				if err != nil {
					errs[i] = fmt.Errorf("%s job %d: %w", tenant, n, err)
					return
				}
				ids = append(ids, id)
			}
			for _, id := range ids {
				if err := awaitDone(ctx, base, id); err != nil {
					errs[i] = fmt.Errorf("%s %s: %w", tenant, id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	completed := int64(opt.Tenants) * int64(opt.Jobs)
	return &obs.ServeBench{
		Tenants:    opt.Tenants,
		Jobs:       opt.Jobs,
		Completed:  completed,
		Rejections: rejections.Load(),
		WallMS:     float64(wall) / float64(time.Millisecond),
		JobsPerSec: float64(completed) / wall.Seconds(),
	}, nil
}

// AttachSchedStats fills the bench fields only the server side knows —
// slot count, busy high-water mark, and the wait/run latency quantiles —
// from the server's own registry snapshot.
func AttachSchedStats(sb *obs.ServeBench, snap obs.Snapshot) {
	for _, g := range snap.Gauges {
		switch g.Name {
		case "server_sched_slots":
			sb.Slots = int(g.Value)
		case "server_sched_slots_busy_max":
			sb.MaxBusySlots = g.Value
		}
	}
	if h, ok := snap.HistogramPoint("server_sched_job_wait_ms"); ok {
		sb.WaitP50MS, sb.WaitP99MS = h.Quantile(0.5), h.Quantile(0.99)
	}
	if h, ok := snap.HistogramPoint("server_sched_job_run_ms"); ok {
		sb.RunP50MS, sb.RunP99MS = h.Quantile(0.5), h.Quantile(0.99)
	}
}

// submitUntilAccepted posts one analyze request, resubmitting on 429
// after the advertised Retry-After (counted), until accepted or ctx
// expires.
func submitUntilAccepted(ctx context.Context, base, tenant string, appsBody []byte, rejections *atomic.Int64) (string, error) {
	var req struct {
		Apps   []string `json:"apps"`
		Tenant string   `json:"tenant"`
	}
	if err := json.Unmarshal(appsBody, &req); err != nil {
		return "", err
	}
	req.Tenant = tenant
	payload, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	for {
		hr, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/analyze", bytes.NewReader(payload))
		if err != nil {
			return "", err
		}
		hr.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			return "", err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var v struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(data, &v); err != nil {
				return "", err
			}
			return v.ID, nil
		case http.StatusTooManyRequests:
			rejections.Add(1)
			delay := 25 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				// The server advertises whole seconds; cap the honor at
				// 250ms so the driver saturates rather than idles.
				delay = min(time.Duration(ra)*time.Second, 250*time.Millisecond)
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return "", ctx.Err()
			}
		default:
			return "", fmt.Errorf("analyze: status %d: %s", resp.StatusCode, data)
		}
	}
}

// awaitDone polls a job until it reports done (failed is an error).
func awaitDone(ctx context.Context, base, id string) error {
	for {
		hr, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+id, nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			return err
		}
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch v.State {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("job failed: %s", v.Error)
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
