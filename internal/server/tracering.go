// tracering.go is the daemon's bounded in-memory store of completed job
// traces. Every job records its own span tree (a per-job obs.Tracer);
// when the job finishes, the tree is serialized once to Chrome
// trace-event JSON and kept here, newest jobs displacing oldest, so
// "why was tenant X's job slow?" is answerable after the fact without
// any external tracing infrastructure: GET /v1/jobs/{id}/trace returns
// the file Perfetto opens directly, and GET /v1/traces lists what the
// ring still holds.
//
// The ring is bounded by count (Config.TraceRing, default
// DefaultTraceRing) because trace size is roughly constant per corpus
// job; eviction is strictly oldest-first and counted in
// server_trace_ring_evictions_total. Traces do not survive a daemon
// restart — a documented limit (docs/KNOWN_ISSUES.md), acceptable
// because traces are diagnostics, not records. Applies §3.1.3's
// record-then-inspect discipline to the serving layer itself.
package server

import (
	"sync"

	"wasabi/internal/obs"
)

// DefaultTraceRing is how many completed job traces the daemon retains
// when Config.TraceRing is zero.
const DefaultTraceRing = 64

// traceMeta is one ring entry's index row — everything about a stored
// trace except the trace body itself. It is the GET /v1/traces wire
// shape.
type traceMeta struct {
	JobID   string `json:"job_id"`
	Tenant  string `json:"tenant"`
	TraceID string `json:"trace_id"`
	// State is the job's terminal state ("done" | "failed").
	State string `json:"state"`
	// Spans counts the trace's complete events; DurationMS is
	// submission → completion; Bytes is the serialized trace size.
	Spans      int     `json:"spans"`
	DurationMS float64 `json:"duration_ms"`
	Bytes      int     `json:"bytes"`
}

// traceEntry is one stored trace: its index row plus the serialized
// Chrome trace-event JSON.
type traceEntry struct {
	meta traceMeta
	data []byte
}

// traceRing holds the most recent completed traces, oldest evicted
// first.
type traceRing struct {
	cap int
	reg *obs.Registry

	mu    sync.Mutex
	byJob map[string]*traceEntry
	order []string // job ids, oldest first
}

// newTraceRing returns an empty ring holding up to capacity traces
// (zero or negative capacity takes DefaultTraceRing).
func newTraceRing(capacity int, reg *obs.Registry) *traceRing {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	r := &traceRing{cap: capacity, reg: reg, byJob: make(map[string]*traceEntry)}
	reg.Gauge("server_trace_ring_capacity").Set(float64(capacity))
	return r
}

// put stores a completed job's trace, evicting the oldest entry when the
// ring is full.
func (r *traceRing) put(meta traceMeta, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	meta.Bytes = len(data)
	for len(r.order) >= r.cap {
		oldest := r.order[0]
		r.order = r.order[1:]
		delete(r.byJob, oldest)
		r.reg.Counter("server_trace_ring_evictions_total").Inc()
	}
	r.byJob[meta.JobID] = &traceEntry{meta: meta, data: data}
	r.order = append(r.order, meta.JobID)
	r.reg.Gauge("server_trace_ring_entries").Set(float64(len(r.order)))
}

// get returns the serialized trace for a job id, if the ring still holds
// it.
func (r *traceRing) get(jobID string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byJob[jobID]
	if !ok {
		return nil, false
	}
	return e.data, true
}

// index lists the held traces' metadata, newest first.
func (r *traceRing) index() []traceMeta {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]traceMeta, 0, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		out = append(out, r.byJob[r.order[i]].meta)
	}
	return out
}
