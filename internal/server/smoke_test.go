package server_test

// smoke_test.go is the end-to-end service exercise `make serve-smoke`
// runs: a real wasabid server on a loopback port, driven over plain
// net/http through the full analyze → poll → report → metrics flow,
// twice — the second job must be served entirely from the cache with
// zero fresh LLM spend and a byte-identical report.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"wasabi/internal/cache"
	"wasabi/internal/obs"
	"wasabi/internal/server"
)

// getJSON decodes a GET response into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// submit posts an analyze request and returns the job id.
func submit(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(`{"apps":["HD"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("analyze: status %d", resp.StatusCode)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// await polls a job until it leaves the queue/runner.
func await(t *testing.T, base, id string) (state string, report json.RawMessage, fresh struct {
	Calls    int   `json:"calls"`
	TokensIn int64 `json:"tokens_in"`
}) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v struct {
			State    string          `json:"state"`
			Error    string          `json:"error"`
			Report   json.RawMessage `json:"report"`
			FreshLLM *struct {
				Calls    int   `json:"calls"`
				TokensIn int64 `json:"tokens_in"`
			} `json:"fresh_llm"`
		}
		getJSON(t, base+"/v1/jobs/"+id, &v)
		switch v.State {
		case "done":
			if v.FreshLLM == nil {
				t.Fatal("done job missing fresh_llm")
			}
			return v.State, v.Report, *v.FreshLLM
		case "failed":
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return
}

func TestServeSmoke(t *testing.T) {
	observer := obs.New()
	ca, err := cache.New(cache.Options{Dir: t.TempDir(), Metrics: observer.Reg()})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Addr:            "127.0.0.1:0",
		QueueDepth:      4,
		PipelineWorkers: 2,
		Cache:           ca,
		Obs:             observer,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Cold job: real LLM traffic.
	id1 := submit(t, base)
	_, report1, fresh1 := await(t, base, id1)
	if fresh1.TokensIn == 0 || fresh1.Calls == 0 {
		t.Fatalf("cold job spent nothing: %+v", fresh1)
	}
	if len(report1) == 0 {
		t.Fatal("cold job returned no report")
	}

	// Warm job: byte-identical report, zero fresh spend.
	id2 := submit(t, base)
	_, report2, fresh2 := await(t, base, id2)
	if fresh2.TokensIn != 0 || fresh2.Calls != 0 {
		t.Fatalf("warm job spent fresh LLM traffic: %+v", fresh2)
	}
	if !bytes.Equal(report1, report2) {
		t.Fatalf("warm report differs from cold: %d vs %d bytes", len(report1), len(report2))
	}

	// Per-app report endpoint serves the completed section.
	var appDoc struct {
		Schema string `json:"schema"`
		App    struct {
			Code string `json:"code"`
		} `json:"app"`
	}
	getJSON(t, base+"/v1/reports/HD", &appDoc)
	if appDoc.App.Code != "HD" {
		t.Fatalf("report app = %+v", appDoc)
	}

	// Metrics exposition reflects the cache and job counters.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`server_jobs_total{status="accepted"} 2`,
		`server_jobs_total{status="done"} 2`,
		`cache_hits_total{stage="review"}`,
		"# TYPE server_job_ms histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	// Graceful drain: refuses new work, then stops serving.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still serving after drain")
	}
}
