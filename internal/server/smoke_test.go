package server_test

// smoke_test.go is the end-to-end service exercise `make serve-smoke`
// runs: a real wasabid server on a loopback port, driven over plain
// net/http through the full analyze → poll → report → metrics flow.
// One cold job pays the LLM spend; then three tenants submit
// concurrently and every warm job must be served entirely from the
// cache with zero fresh spend and a byte-identical report, with
// /metrics proving more than one scheduler slot was busy at once.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"wasabi/internal/cache"
	"wasabi/internal/obs"
	"wasabi/internal/server"
)

// getJSON decodes a GET response into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// submit posts an analyze request for the full corpus under a tenant
// key and returns the job id.
func submit(t *testing.T, base, tenant string) string {
	t.Helper()
	body := `{"tenant":"` + tenant + `"}`
	resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("analyze (%s): status %d", tenant, resp.StatusCode)
	}
	var v struct {
		ID     string `json:"id"`
		Tenant string `json:"tenant"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Tenant != tenant {
		t.Fatalf("job tenant = %q, want %q", v.Tenant, tenant)
	}
	return v.ID
}

// await polls a job until it leaves the queue/runner.
func await(t *testing.T, base, id string) (state string, report json.RawMessage, fresh struct {
	Calls    int   `json:"calls"`
	TokensIn int64 `json:"tokens_in"`
}) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var v struct {
			State    string          `json:"state"`
			Error    string          `json:"error"`
			Report   json.RawMessage `json:"report"`
			FreshLLM *struct {
				Calls    int   `json:"calls"`
				TokensIn int64 `json:"tokens_in"`
			} `json:"fresh_llm"`
		}
		getJSON(t, base+"/v1/jobs/"+id, &v)
		switch v.State {
		case "done":
			if v.FreshLLM == nil {
				t.Fatal("done job missing fresh_llm")
			}
			return v.State, v.Report, *v.FreshLLM
		case "failed":
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return
}

func TestServeSmoke(t *testing.T) {
	observer := obs.New()
	ca, err := cache.New(cache.Options{Dir: t.TempDir(), Metrics: observer.Reg()})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Addr:            "127.0.0.1:0",
		QueueDepth:      4,
		SchedulerSlots:  3,
		PipelineWorkers: 2,
		Cache:           ca,
		Obs:             observer,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Cold job (default shared tenant): real LLM traffic.
	id1 := submit(t, base, server.DefaultTenant)
	_, report1, fresh1 := await(t, base, id1)
	if fresh1.TokensIn == 0 || fresh1.Calls == 0 {
		t.Fatalf("cold job spent nothing: %+v", fresh1)
	}
	if len(report1) == 0 {
		t.Fatal("cold job returned no report")
	}

	// Concurrent warm jobs from three tenants: each byte-identical to
	// the cold report at zero fresh spend, scheduled onto overlapping
	// slots.
	tenants := []string{"team-a", "team-b", "team-c"}
	ids := make([]string, len(tenants))
	var wg sync.WaitGroup
	for i, tenant := range tenants {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			ids[i] = submit(t, base, tenant)
		}(i, tenant)
	}
	wg.Wait()
	for i, id := range ids {
		_, report, fresh := await(t, base, id)
		if fresh.TokensIn != 0 || fresh.Calls != 0 {
			t.Fatalf("warm job %s (%s) spent fresh LLM traffic: %+v", id, tenants[i], fresh)
		}
		if !bytes.Equal(report1, report) {
			t.Fatalf("warm report %s differs from cold: %d vs %d bytes", id, len(report), len(report1))
		}
	}

	// Every completed job's span tree is retained and served as Chrome
	// trace-event JSON; the cold job's must cover the whole lifecycle —
	// queue-wait and slot run, the pipeline root, and per-file reviews —
	// with the job's correlation identity on each span.
	var traceDoc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	getJSON(t, base+"/v1/jobs/"+id1+"/trace", &traceDoc)
	seen := map[string]bool{}
	reviews := 0
	for _, ev := range traceDoc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		seen[ev.Name] = true
		if strings.HasPrefix(ev.Name, "review:") {
			reviews++
		}
		if got := ev.Args["job_id"]; got != id1 {
			t.Fatalf("span %q carries job_id %q, want %q", ev.Name, got, id1)
		}
		if got := ev.Args["tenant"]; got != server.DefaultTenant {
			t.Fatalf("span %q carries tenant %q, want %q", ev.Name, got, server.DefaultTenant)
		}
	}
	for _, want := range []string{"job", "queue-wait", "run", "corpus"} {
		if !seen[want] {
			t.Fatalf("trace for %s is missing the %q span (have %v)", id1, want, seen)
		}
	}
	if reviews == 0 {
		t.Fatalf("trace for %s has no per-file review spans", id1)
	}

	// The trace index lists all four jobs, newest first — the cold job,
	// which completed first, comes last.
	var idx struct {
		Traces []struct {
			JobID   string `json:"job_id"`
			TraceID string `json:"trace_id"`
			State   string `json:"state"`
			Spans   int    `json:"spans"`
		} `json:"traces"`
	}
	getJSON(t, base+"/v1/traces", &idx)
	if len(idx.Traces) != 4 {
		t.Fatalf("trace index has %d entries, want 4", len(idx.Traces))
	}
	if last := idx.Traces[len(idx.Traces)-1]; last.JobID != id1 || last.State != "done" || last.Spans == 0 || last.TraceID == "" {
		t.Fatalf("oldest trace index entry = %+v, want completed %s", last, id1)
	}

	// Per-app report endpoint serves the completed section.
	var appDoc struct {
		Schema string `json:"schema"`
		App    struct {
			Code string `json:"code"`
		} `json:"app"`
	}
	getJSON(t, base+"/v1/reports/HD", &appDoc)
	if appDoc.App.Code != "HD" {
		t.Fatalf("report app = %+v", appDoc)
	}

	// Metrics exposition reflects the jobs, the cache, the per-tenant
	// scheduler series, and the render-time latency summaries. The
	// busy-slot high-water mark proves the warm jobs overlapped. All four
	// one-shot tenants went idle the moment their job finished, so by now
	// eviction has folded their counters into the reserved "_retired"
	// tenant: 4 jobs, and the cold job's token spend.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`server_jobs_total{status="accepted"} 4`,
		`server_jobs_total{status="done"} 4`,
		`server_sched_jobs_total{tenant="_retired"} 4`,
		`server_sched_slots 3`,
		`cache_hits_total{stage="review"}`,
		"# TYPE server_sched_job_wait_ms histogram",
		"# TYPE server_sched_job_run_ms histogram",
		`server_sched_job_wait_ms_quantile{q="0.50"}`,
		`server_sched_job_run_ms_quantile{q="0.99"}`,
		"# TYPE server_sched_tenant_evictions_total counter",
		`server_tenant_llm_tokens_total{tenant="_retired"}`,
		`wasabi_build_info{go_version="` + runtime.Version() + `",version="` + server.Version + `"} 1`,
		"# TYPE server_uptime_seconds gauge",
		"server_trace_ring_entries 4",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	// Evicted tenants leave no per-tenant series behind — that is the
	// point of the fold — and the per-tenant latency histogram (which has
	// no meaningful fold) is dropped outright.
	for _, gone := range []string{`tenant="team-a"`, "server_tenant_job_ms"} {
		if strings.Contains(text, gone) {
			t.Fatalf("metrics still expose %q after eviction:\n%s", gone, text)
		}
	}
	busyMax := float64(0)
	for _, g := range observer.Reg().Snapshot().Gauges {
		if g.Name == "server_sched_slots_busy_max" {
			busyMax = g.Value
		}
	}
	if busyMax < 2 {
		t.Fatalf("server_sched_slots_busy_max = %v, want >= 2 (concurrent tenants must overlap)", busyMax)
	}

	// Graceful drain: refuses new work, then stops serving.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still serving after drain")
	}

	// With every worker exited, all four one-shot tenants went idle and
	// were reclaimed: the eviction counter covers each, and no stale
	// per-tenant state gauges survive.
	snap := observer.Reg().Snapshot()
	if got := snap.Counter("server_sched_tenant_evictions_total"); got != 4 {
		t.Fatalf("server_sched_tenant_evictions_total = %d, want 4", got)
	}
	for _, g := range snap.Gauges {
		if g.Name == "server_sched_queue_depth" || g.Name == "server_sched_tenant_inflight" {
			t.Fatalf("stale per-tenant gauge survived eviction: %+v", g)
		}
	}
}
