// Package errmodel implements a Java-style exception model for the WASABI
// corpus and analyses — the substrate beneath the trigger-exception
// triplets of §3.1.2, the "different exception" oracle of §3.1.3, and the
// retry-ratio IF-bug analysis of §3.2.2.
//
// The WASABI paper studies Java systems, where errors are typed exceptions
// arranged in a class hierarchy, are declared on method signatures, and are
// frequently wrapped ("caused by" chains). Go errors are plain values, so
// this package reconstructs the three properties the toolkit depends on:
//
//   - a class hierarchy with subclass checks (IOException is-a Exception;
//     AccessControlException is-a IOException), used by retry policies in the
//     corpus and by the IF-bug ratio analysis;
//   - wrapping with cause chains (HadoopException wrapping
//     AccessControlException, as in HADOOP-16683), used by the
//     "different exception" oracle and the corpus bugs it must catch;
//   - a stable, analyzable *name* per exception class, used by the static
//     throws-analysis, the fault-injection planner, and report grouping.
package errmodel

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"wasabi/internal/trace"
)

// Exception is a Java-style typed error. The zero value is not useful;
// construct instances with New or Wrap so the class is registered.
type Exception struct {
	// Class is the exception class name, e.g. "ConnectException".
	Class string
	// Msg is the human-readable message.
	Msg string
	// Cause is the wrapped exception, if any (Java's "caused by").
	Cause error
	// Injected marks exceptions thrown by the WASABI fault-injection
	// runtime rather than by application code. Oracles use this to
	// distinguish "test crashed with our own fault" (not a bug) from
	// "test crashed with a different exception" (potential HOW bug).
	Injected bool
	// Site is the normalized function that constructed the exception —
	// the top of the "crash stack" used by the different-exception
	// oracle to group failures into distinct bugs (§4.1).
	Site string
}

// Error implements the error interface.
func (e *Exception) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("%s: %s (caused by: %s)", e.Class, e.Msg, e.Cause.Error())
	}
	if e.Msg == "" {
		return e.Class
	}
	return e.Class + ": " + e.Msg
}

// Unwrap exposes the cause chain to errors.Is/errors.As.
func (e *Exception) Unwrap() error { return e.Cause }

// New constructs an exception of the given class. Unknown classes are
// registered on first use as direct subclasses of "Exception". The
// creation site (the caller's function) is recorded for crash grouping.
func New(class, msg string) *Exception {
	defaultHierarchy.ensure(class)
	return &Exception{Class: class, Msg: msg, Site: trace.CallerFunc(1)}
}

// Newf constructs an exception with a formatted message.
func Newf(class, format string, args ...any) *Exception {
	defaultHierarchy.ensure(class)
	return &Exception{Class: class, Msg: fmt.Sprintf(format, args...), Site: trace.CallerFunc(1)}
}

// Wrap constructs an exception of the given class that wraps cause.
func Wrap(class, msg string, cause error) *Exception {
	defaultHierarchy.ensure(class)
	return &Exception{Class: class, Msg: msg, Cause: cause, Site: trace.CallerFunc(1)}
}

// ClassOf returns the exception class of err, or "" if err is not an
// *Exception.
func ClassOf(err error) string {
	if e, ok := err.(*Exception); ok {
		return e.Class
	}
	return ""
}

// IsClass reports whether err is an *Exception whose class is cls or a
// subclass of cls. It does NOT follow the cause chain: like a Java catch
// block, it only looks at the outermost exception. Use CauseIsClass to
// search the chain.
func IsClass(err error, cls string) bool {
	e, ok := err.(*Exception)
	if !ok {
		return false
	}
	return defaultHierarchy.isSubclass(e.Class, cls)
}

// CauseIsClass reports whether any exception in err's cause chain
// (including err itself) is of class cls or a subclass.
func CauseIsClass(err error, cls string) bool {
	for err != nil {
		if IsClass(err, cls) {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// RootCause returns the innermost error in err's cause chain.
func RootCause(err error) error {
	for {
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return err
		}
		inner := u.Unwrap()
		if inner == nil {
			return err
		}
		err = inner
	}
}

// hierarchy is a registry of exception classes and their superclasses.
type hierarchy struct {
	mu     sync.RWMutex
	parent map[string]string // class -> superclass ("" for the root)
}

var defaultHierarchy = &hierarchy{parent: map[string]string{"Exception": ""}}

func (h *hierarchy) ensure(class string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.parent[class]; !ok {
		h.parent[class] = "Exception"
	}
}

func (h *hierarchy) declare(class, super string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.parent[super]; !ok {
		h.parent[super] = "Exception"
	}
	h.parent[class] = super
}

func (h *hierarchy) isSubclass(class, super string) bool {
	if class == super {
		return true
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	for c := class; c != ""; {
		p, ok := h.parent[c]
		if !ok {
			return false
		}
		if p == super {
			return true
		}
		c = p
	}
	return false
}

func (h *hierarchy) classes() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.parent))
	for c := range h.parent {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Declare registers class as a direct subclass of super. Both are created
// if missing. Redeclaring a class updates its superclass; the corpus
// declares its hierarchy once at init time.
func Declare(class, super string) {
	defaultHierarchy.declare(class, super)
}

// IsSubclass reports whether class equals super or descends from it.
func IsSubclass(class, super string) bool {
	return defaultHierarchy.isSubclass(class, super)
}

// Classes returns all registered exception class names, sorted.
func Classes() []string { return defaultHierarchy.classes() }

// Superclass returns the declared superclass of class ("" for the root or
// unknown classes).
func Superclass(class string) string {
	defaultHierarchy.mu.RLock()
	defer defaultHierarchy.mu.RUnlock()
	return defaultHierarchy.parent[class]
}

// WrapChain returns the exception classes along err's cause chain,
// outermost first. Non-Exception links appear as their error strings
// truncated to the first token.
func WrapChain(err error) []string {
	var chain []string
	for err != nil {
		if e, ok := err.(*Exception); ok {
			chain = append(chain, e.Class)
		} else {
			s := err.Error()
			if i := strings.IndexAny(s, ": "); i > 0 {
				s = s[:i]
			}
			chain = append(chain, s)
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			break
		}
		err = u.Unwrap()
	}
	return chain
}

// Standard hierarchy used across the corpus. Mirrors the Java classes that
// appear in the paper's bug examples.
func init() {
	for _, d := range [][2]string{
		{"RuntimeException", "Exception"},
		{"IOException", "Exception"},
		{"InterruptedException", "Exception"},

		// IOException family (HADOOP-16580, HADOOP-16683).
		{"AccessControlException", "IOException"},
		{"ConnectException", "IOException"},
		{"SocketException", "IOException"},
		{"SocketTimeoutException", "SocketException"},
		{"EOFException", "IOException"},
		{"FileNotFoundException", "IOException"},
		{"RemoteException", "IOException"},
		{"TimeoutException", "Exception"},

		// RuntimeException family.
		{"IllegalArgumentException", "RuntimeException"},
		{"IllegalStateException", "RuntimeException"},
		{"NullPointerException", "RuntimeException"},
		{"ConcurrentModificationException", "RuntimeException"},
		{"UnsupportedOperationException", "RuntimeException"},

		// Coordination-library exceptions (HBASE-25743).
		{"KeeperException", "Exception"},
		{"KeeperConnectionLossException", "KeeperException"},
		{"KeeperSessionExpiredException", "KeeperException"},
		{"KeeperRequestTimeoutException", "KeeperException"},

		// Application wrapper exceptions.
		{"HadoopException", "IOException"},
		{"ServiceException", "Exception"},
		{"TTransportException", "Exception"},
		{"ExitException", "RuntimeException"},

		// Queue / messaging exceptions (KAFKA-style error mapping).
		{"RetriableException", "Exception"},
		{"CoordinatorLoadInProgressException", "RetriableException"},
		{"UnknownTopicOrPartitionException", "RetriableException"},
		{"NotEnoughReplicasException", "RetriableException"},

		// Fault-injection marker class.
		{"InjectedFault", "Exception"},
	} {
		Declare(d[0], d[1])
	}
}
