package errmodel

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSetsClassAndMessage(t *testing.T) {
	e := New("ConnectException", "connection refused")
	if e.Class != "ConnectException" {
		t.Errorf("Class = %q, want ConnectException", e.Class)
	}
	if got := e.Error(); got != "ConnectException: connection refused" {
		t.Errorf("Error() = %q", got)
	}
}

func TestNewEmptyMessage(t *testing.T) {
	e := New("TimeoutException", "")
	if got := e.Error(); got != "TimeoutException" {
		t.Errorf("Error() = %q, want bare class name", got)
	}
}

func TestNewfFormatsMessage(t *testing.T) {
	e := Newf("SocketException", "port %d", 8020)
	if e.Msg != "port 8020" {
		t.Errorf("Msg = %q", e.Msg)
	}
}

func TestIsClassExactMatch(t *testing.T) {
	e := New("ConnectException", "x")
	if !IsClass(e, "ConnectException") {
		t.Error("exception should match its own class")
	}
}

func TestIsClassSubclass(t *testing.T) {
	// ConnectException -> IOException -> Exception
	e := New("ConnectException", "x")
	if !IsClass(e, "IOException") {
		t.Error("ConnectException should be an IOException")
	}
	if !IsClass(e, "Exception") {
		t.Error("ConnectException should be an Exception")
	}
}

func TestIsClassRejectsSibling(t *testing.T) {
	e := New("ConnectException", "x")
	if IsClass(e, "RuntimeException") {
		t.Error("ConnectException should not be a RuntimeException")
	}
	if IsClass(e, "AccessControlException") {
		t.Error("superclass should not match subclass")
	}
}

func TestIsClassNonException(t *testing.T) {
	if IsClass(errors.New("plain"), "Exception") {
		t.Error("plain error must not match any class")
	}
}

func TestIsClassDoesNotUnwrap(t *testing.T) {
	inner := New("AccessControlException", "denied")
	outer := Wrap("HadoopException", "rpc failed", inner)
	if IsClass(outer, "AccessControlException") {
		t.Error("IsClass must behave like a catch block: outermost class only")
	}
	if !CauseIsClass(outer, "AccessControlException") {
		t.Error("CauseIsClass must search the wrap chain")
	}
}

func TestRootCause(t *testing.T) {
	inner := New("SocketTimeoutException", "t/o")
	mid := Wrap("RemoteException", "remote", inner)
	outer := Wrap("ServiceException", "svc", mid)
	if got := RootCause(outer); got != inner {
		t.Errorf("RootCause = %v, want innermost", got)
	}
}

func TestRootCauseNoWrap(t *testing.T) {
	e := New("EOFException", "eof")
	if RootCause(e) != e {
		t.Error("unwrapped exception is its own root cause")
	}
}

func TestWrapChain(t *testing.T) {
	inner := New("AccessControlException", "denied")
	outer := Wrap("HadoopException", "wrapped", inner)
	chain := WrapChain(outer)
	if len(chain) != 2 || chain[0] != "HadoopException" || chain[1] != "AccessControlException" {
		t.Errorf("WrapChain = %v", chain)
	}
}

func TestErrorsIsThroughCauseChain(t *testing.T) {
	inner := New("KeeperRequestTimeoutException", "zk")
	outer := Wrap("ServiceException", "svc", inner)
	if !errors.Is(outer, inner) {
		t.Error("errors.Is should follow Unwrap to the cause")
	}
}

func TestDeclareNewBranch(t *testing.T) {
	Declare("CorruptBlockException", "IOException")
	e := New("CorruptBlockException", "bad block")
	if !IsClass(e, "IOException") {
		t.Error("declared subclass relation not honored")
	}
}

func TestUnknownClassDefaultsToException(t *testing.T) {
	e := New("TotallyNovelException", "x")
	if !IsClass(e, "Exception") {
		t.Error("unknown classes must default to subclasses of Exception")
	}
}

func TestClassOf(t *testing.T) {
	if got := ClassOf(New("EOFException", "")); got != "EOFException" {
		t.Errorf("ClassOf = %q", got)
	}
	if got := ClassOf(errors.New("x")); got != "" {
		t.Errorf("ClassOf(plain) = %q, want empty", got)
	}
}

func TestSuperclass(t *testing.T) {
	if got := Superclass("SocketTimeoutException"); got != "SocketException" {
		t.Errorf("Superclass = %q", got)
	}
	if got := Superclass("Exception"); got != "" {
		t.Errorf("Superclass(root) = %q, want empty", got)
	}
}

func TestClassesSortedAndContainsStandard(t *testing.T) {
	cs := Classes()
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("Classes() not strictly sorted at %d: %q >= %q", i, cs[i-1], cs[i])
		}
	}
	want := map[string]bool{"IOException": true, "InjectedFault": true, "KeeperException": true}
	for _, c := range cs {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("standard classes missing: %v", want)
	}
}

// Property: IsSubclass is reflexive and transitive up the declared chain.
func TestIsSubclassReflexiveProperty(t *testing.T) {
	f := func(i uint8) bool {
		cs := Classes()
		c := cs[int(i)%len(cs)]
		return IsSubclass(c, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every registered class is a subclass of the root.
func TestEverythingDescendsFromException(t *testing.T) {
	for _, c := range Classes() {
		if !IsSubclass(c, "Exception") && c != "Exception" {
			t.Errorf("%s does not descend from Exception", c)
		}
	}
}

// Property: wrap preserves the cause and extends the chain by exactly one.
func TestWrapChainLengthProperty(t *testing.T) {
	f := func(depth uint8) bool {
		n := int(depth%6) + 1
		err := error(New("EOFException", "leaf"))
		for i := 1; i < n; i++ {
			err = Wrap("ServiceException", "layer", err)
		}
		return len(WrapChain(err)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapChainStopsAtPlainError(t *testing.T) {
	e := Wrap("ServiceException", "svc", errors.New("plain failure"))
	chain := WrapChain(e)
	if len(chain) != 2 {
		t.Fatalf("chain = %v", chain)
	}
	if strings.Contains(chain[1], " ") {
		t.Errorf("plain error should be truncated to first token: %q", chain[1])
	}
}
