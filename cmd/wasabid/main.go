// Command wasabid runs the WASABI pipeline as a long-lived analysis
// daemon (internal/server) fronted by the content-addressed cache
// (internal/cache), so repeated analysis of an unchanged corpus costs
// zero fresh LLM tokens. docs/SERVICE.md documents the HTTP API.
//
// Usage:
//
//	wasabid [-addr :8788] [-queue 8] [-workers N]
//	        [-cache-dir DIR] [-cache-bytes N] [-pprof]
//	        [-llm-fault-profile none|light|heavy|outage|k=v,...]
//	        [-llm-outage-after N]
//
// The daemon prints its bound address on startup ("-addr :0" picks a
// free port) and drains gracefully on SIGTERM/SIGINT: accepted jobs run
// to completion, new submissions are refused with 503, then the
// listener closes. A second signal aborts the drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wasabi/internal/cache"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/server"
)

func main() {
	addr := flag.String("addr", ":8788", "listen address (\":0\" picks a free port)")
	queue := flag.Int("queue", 8, "job queue depth; submissions beyond it get 429")
	workers := flag.Int("workers", 0, "pipeline worker pool size per job; 0 = one per CPU")
	cacheDir := flag.String("cache-dir", "", "persist the analysis cache in this directory (empty = memory only)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory cache byte budget (0 = default)")
	faultProfile := flag.String("llm-fault-profile", "",
		fmt.Sprintf("simulate an unreliable LLM backend for every job: %v or key=value list (see docs/RESILIENCE.md)", llm.ProfileNames()))
	outageAfter := flag.Int("llm-outage-after", 0, "take the LLM backend hard-down from the Nth review of each job (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for accepted jobs to finish")
	pprofOn := flag.Bool("pprof", false, "expose the Go runtime profiler under /debug/pprof/ (see docs/PERFORMANCE.md)")
	flag.Parse()

	observer := obs.New()
	cfg := server.Config{
		Addr:            *addr,
		QueueDepth:      *queue,
		PipelineWorkers: *workers,
		Obs:             observer,
		Pprof:           *pprofOn,
	}
	ca, err := cache.New(cache.Options{Dir: *cacheDir, MaxBytes: *cacheBytes, Metrics: observer.Reg()})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg.Cache = ca
	if *faultProfile != "" || *outageAfter > 0 {
		profile, err := llm.ParseFaultProfile(*faultProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *outageAfter > 0 {
			profile.OutageAfterFiles = *outageAfter
		}
		cfg.Fault = &profile
	}

	srv := server.New(cfg)
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wasabid: listening on %s (queue %d, cache %s)\n",
		srv.Addr(), *queue, cacheLabel(*cacheDir))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	<-ctx.Done()
	stop() // a second signal now kills the process instead of the drain
	fmt.Fprintln(os.Stderr, "wasabid: draining (accepted jobs run to completion)")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := ca.Stats()
	fmt.Fprintf(os.Stderr, "wasabid: drained; cache %d hits, %d misses, %d evictions, %d entries, %d bytes\n",
		st.Hits[cache.StageReview]+st.Hits[cache.StageAnalysis],
		st.Misses[cache.StageReview]+st.Misses[cache.StageAnalysis],
		st.Evictions, st.Entries, st.Bytes)
}

// cacheLabel describes the cache configuration for the startup line.
func cacheLabel(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return "persisted in " + dir
}
