// Command wasabid runs the WASABI pipeline as a long-lived analysis
// daemon (internal/server) fronted by the content-addressed cache
// (internal/cache), so repeated analysis of an unchanged corpus costs
// zero fresh LLM tokens. docs/SERVICE.md documents the HTTP API.
//
// Usage:
//
//	wasabid [-addr :8788] [-queue 8] [-workers N] [-corpus DIR]
//	        [-slots N] [-tenant-quota N] [-tenant-priority name=w,...]
//	        [-cache-dir DIR] [-cache-bytes N] [-pprof]
//	        [-llm-fault-profile none|light|heavy|outage|k=v,...]
//	        [-llm-outage-after N]
//	        [-llm-backends name=sim[:profile];name=http:URL;...]
//	        [-llm-hedge-after DUR]
//	        [-log-format text|json] [-log-level LEVEL] [-trace-ring N]
//	        [-version]
//
// -corpus points the daemon at a generated corpus root (cmd/corpusgen,
// docs/CORPUSGEN.md) instead of the built-in seed corpus: every job's
// app codes resolve against the generated population.
//
// Jobs run concurrently on -slots worker slots fed by per-tenant fair
// queues (docs/SCHEDULING.md): -queue bounds each tenant's backlog,
// -tenant-quota caps one tenant's concurrent slots, and -tenant-priority
// grants named tenants extra round-robin weight.
//
// Structured logs go to stderr (-log-format json for machine
// consumption; every job event carries job_id/tenant/trace_id — the
// event catalog is in docs/OBSERVABILITY.md), and each completed job's
// span tree is retained in a -trace-ring-bounded ring served at
// GET /v1/jobs/{id}/trace.
//
// The daemon prints its bound address on startup ("-addr :0" picks a
// free port) and drains gracefully on SIGTERM/SIGINT: accepted jobs run
// to completion, new submissions are refused with 503, then the
// listener closes. A second signal aborts the drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wasabi/internal/cache"
	"wasabi/internal/corpusgen"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/server"
)

func main() {
	addr := flag.String("addr", ":8788", "listen address (\":0\" picks a free port)")
	queue := flag.Int("queue", 8, "per-tenant job queue depth; submissions beyond it get 429")
	slots := flag.Int("slots", 0, "concurrent job slots; 0 = GOMAXPROCS (min 2)")
	tenantQuota := flag.Int("tenant-quota", 0, "max concurrent jobs per tenant; 0 = slots")
	tenantPriority := flag.String("tenant-priority", "", "round-robin weights as name=w,... (unlisted tenants weigh 1)")
	workers := flag.Int("workers", 0, "pipeline worker pool size per job; 0 = one per CPU")
	corpusRoot := flag.String("corpus", "", "generated corpus root (cmd/corpusgen); empty = built-in seed corpus")
	cacheDir := flag.String("cache-dir", "", "persist the analysis cache in this directory (empty = memory only)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory cache byte budget (0 = default)")
	faultProfile := flag.String("llm-fault-profile", "",
		fmt.Sprintf("simulate an unreliable LLM backend for every job: %v or key=value list (see docs/RESILIENCE.md)", llm.ProfileNames()))
	outageAfter := flag.Int("llm-outage-after", 0, "take the LLM backend hard-down from the Nth review of each job (0 = never)")
	backends := flag.String("llm-backends", "",
		"route reviews across an ordered multi-backend topology: \"name=sim[:profile];name=http:URL;...\" (see docs/RESILIENCE.md); mutually exclusive with -llm-fault-profile")
	hedgeAfter := flag.Duration("llm-hedge-after", 0,
		"launch a hedged attempt on the next healthy backend after this much silence (0 = no hedging; needs -llm-backends)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for accepted jobs to finish")
	pprofOn := flag.Bool("pprof", false, "expose the Go runtime profiler under /debug/pprof/ (see docs/PERFORMANCE.md)")
	logFormat := flag.String("log-format", "text", "structured log encoding on stderr: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	traceRing := flag.Int("trace-ring", 0, "completed job traces to retain for GET /v1/jobs/{id}/trace (0 = default)")
	showVersion := flag.Bool("version", false, "print the wasabi version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("wasabid %s %s\n", server.Version, runtime.Version())
		return
	}
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	priorities, err := parsePriorities(*tenantPriority)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	observer := obs.New()
	cfg := server.Config{
		Addr:            *addr,
		QueueDepth:      *queue,
		SchedulerSlots:  *slots,
		TenantQuota:     *tenantQuota,
		TenantPriority:  priorities,
		PipelineWorkers: *workers,
		Obs:             observer,
		Pprof:           *pprofOn,
		Log:             logger,
		TraceRing:       *traceRing,
	}
	ca, err := cache.New(cache.Options{Dir: *cacheDir, MaxBytes: *cacheBytes, Metrics: observer.Reg()})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg.Cache = ca
	if *corpusRoot != "" {
		apps, _, err := corpusgen.LoadApps(*corpusRoot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Corpus = apps
	}
	if *faultProfile != "" || *outageAfter > 0 {
		profile, err := llm.ParseFaultProfile(*faultProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *outageAfter > 0 {
			profile.OutageAfterFiles = *outageAfter
		}
		cfg.Fault = &profile
	}
	if *backends != "" {
		if cfg.Fault != nil {
			fmt.Fprintln(os.Stderr, "wasabid: -llm-backends and -llm-fault-profile/-llm-outage-after are mutually exclusive; put per-backend fault profiles in the topology (name=sim:profile)")
			os.Exit(2)
		}
		specs, err := llm.ParseBackends(*backends)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.LLMBackends = specs
		cfg.LLMHedgeAfter = *hedgeAfter
	} else if *hedgeAfter > 0 {
		fmt.Fprintln(os.Stderr, "wasabid: -llm-hedge-after needs -llm-backends (hedging routes across a topology)")
		os.Exit(2)
	}

	srv := server.New(cfg)
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wasabid: listening on %s (slots %s, per-tenant queue %d, cache %s)\n",
		srv.Addr(), slotsLabel(*slots), *queue, cacheLabel(*cacheDir))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	<-ctx.Done()
	stop() // a second signal now kills the process instead of the drain
	fmt.Fprintln(os.Stderr, "wasabid: draining (accepted jobs run to completion)")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := ca.Stats()
	fmt.Fprintf(os.Stderr, "wasabid: drained; cache %d hits, %d misses, %d evictions, %d entries, %d bytes\n",
		st.Hits[cache.StageReview]+st.Hits[cache.StageAnalysis],
		st.Misses[cache.StageReview]+st.Misses[cache.StageAnalysis],
		st.Evictions, st.Entries, st.Bytes)
}

// buildLogger assembles the daemon's slog handler from the -log-format
// and -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("wasabid: -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("wasabid: -log-format %q is not text or json", format)
	}
}

// cacheLabel describes the cache configuration for the startup line.
func cacheLabel(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return "persisted in " + dir
}

// slotsLabel describes the scheduler sizing for the startup line.
func slotsLabel(slots int) string {
	if slots <= 0 {
		return "auto"
	}
	return strconv.Itoa(slots)
}

// parsePriorities parses the -tenant-priority "name=w,..." list.
func parsePriorities(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, pair := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("wasabid: -tenant-priority entry %q is not name=weight", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("wasabid: -tenant-priority weight for %q must be a positive integer", name)
		}
		out[name] = w
	}
	return out, nil
}
