// Command studyreport regenerates the empirical-study artifacts: Table 1
// (applications), Table 2 (root causes), and the §2.5 statistics.
//
// -corpus-table instead prints the per-application composition table
// computed from the corpus ground-truth manifests — the exact markdown
// of docs/CORPUS.md, so `make docs-check` can fail when the documented
// table drifts from the manifests.
package main

import (
	"flag"
	"fmt"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/apps/meta"
	"wasabi/internal/evaluation"
	"wasabi/internal/study"
)

func main() {
	verbose := flag.Bool("v", false, "also list every studied issue")
	corpusTable := flag.Bool("corpus-table", false, "print the per-app composition table computed from the corpus manifests (docs/CORPUS.md format)")
	flag.Parse()

	if *corpusTable {
		list := corpus.Manifests()
		var rows []meta.AppCount
		for _, a := range corpus.Apps() {
			rows = append(rows, meta.CountApp(a.Code, list))
		}
		fmt.Print(meta.CompositionTable(rows))
		return
	}

	fmt.Println(evaluation.Table1())
	fmt.Println(evaluation.Table2())
	fmt.Println(evaluation.StudyStats())

	if *verbose {
		fmt.Println("Studied issues:")
		for _, i := range study.Issues() {
			marker := " "
			if i.InPaper {
				marker = "*"
			}
			fmt.Printf("%s %-20s %-13s %-20s %-12s %s\n",
				marker, i.ID, i.App, i.Category, i.Mechanism, i.Title)
		}
		fmt.Println("\n(* = discussed explicitly in the paper)")
	}
}
