// Command studyreport regenerates the empirical-study artifacts: Table 1
// (applications), Table 2 (root causes), and the §2.5 statistics.
package main

import (
	"flag"
	"fmt"

	"wasabi/internal/evaluation"
	"wasabi/internal/study"
)

func main() {
	verbose := flag.Bool("v", false, "also list every studied issue")
	flag.Parse()

	fmt.Println(evaluation.Table1())
	fmt.Println(evaluation.Table2())
	fmt.Println(evaluation.StudyStats())

	if *verbose {
		fmt.Println("Studied issues:")
		for _, i := range study.Issues() {
			marker := " "
			if i.InPaper {
				marker = "*"
			}
			fmt.Printf("%s %-20s %-13s %-20s %-12s %s\n",
				marker, i.ID, i.App, i.Category, i.Mechanism, i.Title)
		}
		fmt.Println("\n(* = discussed explicitly in the paper)")
	}
}
