// Command benchreport regenerates every table and figure of the paper's
// evaluation from the corpus (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	benchreport                  # everything
//	benchreport -only table3     # one artifact: table1..table6, figure3,
//	                             # figure4, study, if, cost, ablation
//	benchreport -workers 1       # force the sequential pipeline (tables
//	                             # are byte-identical at any worker count)
package main

import (
	"flag"
	"fmt"
	"os"

	"wasabi/internal/core"
	"wasabi/internal/evaluation"
)

func main() {
	only := flag.String("only", "", "render a single artifact")
	workers := flag.Int("workers", 0, "worker pool size; 0 = one per CPU, 1 = sequential")
	flag.Parse()

	static := map[string]func() string{
		"table1": evaluation.Table1,
		"table2": evaluation.Table2,
		"study":  evaluation.StudyStats,
	}
	if f, ok := static[*only]; ok {
		fmt.Println(f())
		return
	}

	opts := core.DefaultOptions()
	opts.Workers = *workers
	ev, err := evaluation.RunWith(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dynamic := map[string]func() string{
		"table3":   ev.Table3,
		"table4":   ev.Table4,
		"table5":   ev.Table5,
		"table6":   ev.Table6,
		"figure3":  ev.Figure3,
		"figure4":  ev.Figure4,
		"if":       ev.IFReportText,
		"cost":     ev.CostReport,
		"ablation": ev.AblationKeywordFilter,
		"oracles":  ev.AblationOracles,
	}
	if *only != "" {
		f, ok := dynamic[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *only)
			os.Exit(2)
		}
		fmt.Println(f())
		return
	}

	fmt.Println(evaluation.Table1())
	fmt.Println(evaluation.Table2())
	fmt.Println(evaluation.StudyStats())
	for _, name := range []string{"table3", "table4", "table5", "table6", "figure3", "figure4", "if", "cost", "ablation", "oracles"} {
		fmt.Println(dynamic[name]())
	}
}
