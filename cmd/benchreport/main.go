// Command benchreport regenerates every table and figure of the paper's
// evaluation from the corpus (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	benchreport                  # everything
//	benchreport -only table3     # one artifact: table1..table6, figure3,
//	                             # figure4, study, if, cost, ablation
//	benchreport -workers 1       # force the sequential pipeline (tables
//	                             # are byte-identical at any worker count)
//
// Every run that executes the pipeline also instruments it
// (docs/OBSERVABILITY.md) and rolls the metrics snapshot up into
// BENCH_pipeline.json — stage → {wall_ms, count, tokens} — so the bench
// trajectory is machine-readable; -pipeline-out renames the artifact,
// -pipeline-out "" disables it. The stage stats come from the run's own
// metrics registry rather than being recomputed from results.
package main

import (
	"flag"
	"fmt"
	"os"

	"wasabi/internal/core"
	"wasabi/internal/evaluation"
	"wasabi/internal/obs"
)

func main() {
	only := flag.String("only", "", "render a single artifact")
	workers := flag.Int("workers", 0, "worker pool size; 0 = one per CPU, 1 = sequential")
	pipelineOut := flag.String("pipeline-out", "BENCH_pipeline.json", "write the per-stage pipeline report (JSON) here; empty disables")
	flag.Parse()

	static := map[string]func() string{
		"table1": evaluation.Table1,
		"table2": evaluation.Table2,
		"study":  evaluation.StudyStats,
	}
	if f, ok := static[*only]; ok {
		fmt.Println(f())
		return
	}

	opts := core.DefaultOptions()
	opts.Workers = *workers
	if *pipelineOut != "" {
		opts.Obs = obs.New()
	}
	ev, err := evaluation.RunWith(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *pipelineOut != "" {
		rep := obs.BuildPipelineReport(opts.Obs.Reg().Snapshot())
		data, err := rep.MarshalIndent()
		if err == nil {
			err = os.WriteFile(*pipelineOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *pipelineOut)
	}
	dynamic := map[string]func() string{
		"table3":   ev.Table3,
		"table4":   ev.Table4,
		"table5":   ev.Table5,
		"table6":   ev.Table6,
		"figure3":  ev.Figure3,
		"figure4":  ev.Figure4,
		"if":       ev.IFReportText,
		"cost":     ev.CostReport,
		"ablation": ev.AblationKeywordFilter,
		"oracles":  ev.AblationOracles,
	}
	if *only != "" {
		f, ok := dynamic[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *only)
			os.Exit(2)
		}
		fmt.Println(f())
		return
	}

	fmt.Println(evaluation.Table1())
	fmt.Println(evaluation.Table2())
	fmt.Println(evaluation.StudyStats())
	for _, name := range []string{"table3", "table4", "table5", "table6", "figure3", "figure4", "if", "cost", "ablation", "oracles"} {
		fmt.Println(dynamic[name]())
	}
}
