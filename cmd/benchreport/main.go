// Command benchreport regenerates every table and figure of the paper's
// evaluation from the corpus (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	benchreport                  # everything
//	benchreport -only table3     # one artifact: table1..table6, figure3,
//	                             # figure4, study, if, cost, ablation
//	benchreport -workers 1       # force the sequential pipeline (tables
//	                             # are byte-identical at any worker count)
//
// Every run that executes the pipeline also instruments it
// (docs/OBSERVABILITY.md) and rolls the metrics snapshot up into
// BENCH_pipeline.json — stage → {wall_ms, count, tokens} — so the bench
// trajectory is machine-readable; -pipeline-out renames the artifact,
// -pipeline-out "" disables it. The stage stats come from the run's own
// metrics registry rather than being recomputed from results. The
// artifact also carries the cold-vs-warm analysis-cache comparison
// (docs/SERVICE.md): a second full-corpus run against a populated cache,
// with its wall time, fresh token spend and hit/miss counts — and, since
// v4, the multi-tenant scheduler load benchmark (docs/SCHEDULING.md):
// simulated tenants hammering an in-process wasabid, with throughput
// and wait/run latency quantiles.
//
// -scale-sweep additionally generates synthetic corpora with
// internal/corpusgen at 1× and 10× the seed scale and measures cold and
// warm full runs over each (the v5 scale_sweep section, see
// docs/CORPUSGEN.md). The sweep analyzes hundreds of generated apps, so
// it is off by default and requested only by `make bench`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/cache"
	"wasabi/internal/core"
	"wasabi/internal/corpusgen"
	"wasabi/internal/evaluation"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/sast"
	"wasabi/internal/server"
	"wasabi/internal/source"
)

func main() {
	only := flag.String("only", "", "render a single artifact")
	workers := flag.Int("workers", 0, "worker pool size; 0 = one per CPU, 1 = sequential")
	pipelineOut := flag.String("pipeline-out", "BENCH_pipeline.json", "write the per-stage pipeline report (JSON) here; empty disables")
	scaleSweep := flag.Bool("scale-sweep", false, "also measure cold/warm runs over generated corpora at 1x and 10x scale (slow; `make bench` only)")
	flag.Parse()

	static := map[string]func() string{
		"table1": evaluation.Table1,
		"table2": evaluation.Table2,
		"study":  evaluation.StudyStats,
	}
	if f, ok := static[*only]; ok {
		fmt.Println(f())
		return
	}

	opts := core.DefaultOptions()
	opts.Workers = *workers
	if *pipelineOut != "" {
		opts.Obs = obs.New()
	}
	ev, err := evaluation.RunWith(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *pipelineOut != "" {
		rep := obs.BuildPipelineReport(opts.Obs.Reg().Snapshot())
		cb, err := measureCacheBench(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		rep.Cache = cb
		eb, err := measureEditBench(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		rep.SingleEdit = eb
		rb, err := measureRestartBench(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		rep.Restart = rb
		sb, err := measureServeBench(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		rep.Serve = sb
		if *scaleSweep {
			sw, err := measureScaleBench(*workers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
				os.Exit(1)
			}
			rep.Scale = sw
		}
		data, err := rep.MarshalIndent()
		if err == nil {
			err = os.WriteFile(*pipelineOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *pipelineOut)
	}
	dynamic := map[string]func() string{
		"table3":   ev.Table3,
		"table4":   ev.Table4,
		"table5":   ev.Table5,
		"table6":   ev.Table6,
		"figure3":  ev.Figure3,
		"figure4":  ev.Figure4,
		"if":       ev.IFReportText,
		"cost":     ev.CostReport,
		"ablation": ev.AblationKeywordFilter,
		"oracles":  ev.AblationOracles,
	}
	if *only != "" {
		f, ok := dynamic[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *only)
			os.Exit(2)
		}
		fmt.Println(f())
		return
	}

	fmt.Println(evaluation.Table1())
	fmt.Println(evaluation.Table2())
	fmt.Println(evaluation.StudyStats())
	for _, name := range []string{"table3", "table4", "table5", "table6", "figure3", "figure4", "if", "cost", "ablation", "oracles"} {
		fmt.Println(dynamic[name]())
	}
}

// measureCacheBench runs the full corpus twice against one shared cache
// and one shared snapshot store (the daemon configuration): cold
// (populating) and warm (replaying). Wall times are honest measurements;
// the token and hit/miss rows are deterministic — a warm corpus must
// cost zero fresh tokens (the contract the service in docs/SERVICE.md is
// built on).
func measureCacheBench(workers int) (*obs.CacheBench, error) {
	ca, err := cache.New(cache.Options{})
	if err != nil {
		return nil, err
	}
	store := source.NewStore(nil)
	run := func() (time.Duration, llm.Usage, error) {
		opts := core.DefaultOptions()
		opts.Workers = workers
		opts.Cache = ca
		opts.Source = store
		w := core.New(opts)
		start := time.Now()
		_, err := w.RunCorpus(corpus.Apps())
		return time.Since(start), w.LLMUsage(), err
	}
	coldWall, coldFresh, err := run()
	if err != nil {
		return nil, err
	}
	before := ca.Stats()
	warmWall, warmFresh, err := run()
	if err != nil {
		return nil, err
	}
	after := ca.Stats()
	var hits, misses int64
	for k, v := range after.Hits {
		hits += v - before.Hits[k]
	}
	for k, v := range after.Misses {
		misses += v - before.Misses[k]
	}
	return &obs.CacheBench{
		ColdWallMS:      float64(coldWall) / float64(time.Millisecond),
		WarmWallMS:      float64(warmWall) / float64(time.Millisecond),
		ColdFreshTokens: coldFresh.TokensIn,
		WarmFreshTokens: warmFresh.TokensIn,
		WarmHits:        hits,
		WarmMisses:      misses,
	}, nil
}

// measureScaleBench runs the generated-corpus scale sweep: for each
// scale factor it generates a synthetic corpus (internal/corpusgen,
// seed 1) into a scratch directory and runs the full pipeline over it
// twice against a fresh per-scale cache — cold (populating) and warm
// (replaying). Wall times are honest measurements; app/structure counts
// and token rows are deterministic for the fixed seed, and the warm run
// must cost zero fresh tokens at every scale.
func measureScaleBench(workers int) ([]obs.ScaleBench, error) {
	var out []obs.ScaleBench
	for _, scale := range []int{1, 10} {
		c, err := corpusgen.Generate(corpusgen.Config{Seed: 1, Scale: scale})
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "wasabi-scalebench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		if err := corpusgen.Write(c, dir, workers); err != nil {
			return nil, err
		}
		apps, spec, err := corpusgen.LoadApps(dir)
		if err != nil {
			return nil, err
		}
		ca, err := cache.New(cache.Options{})
		if err != nil {
			return nil, err
		}
		store := source.NewStore(nil)
		run := func() (time.Duration, llm.Usage, error) {
			opts := core.DefaultOptions()
			opts.Workers = workers
			opts.Cache = ca
			opts.Source = store
			w := core.New(opts)
			start := time.Now()
			_, err := w.RunCorpus(apps)
			return time.Since(start), w.LLMUsage(), err
		}
		coldWall, coldFresh, err := run()
		if err != nil {
			return nil, err
		}
		warmWall, warmFresh, err := run()
		if err != nil {
			return nil, err
		}
		out = append(out, obs.ScaleBench{
			Scale:           scale,
			Apps:            len(apps),
			Structures:      len(spec.Manifests()),
			ColdWallMS:      float64(coldWall) / float64(time.Millisecond),
			WarmWallMS:      float64(warmWall) / float64(time.Millisecond),
			ColdFreshTokens: coldFresh.TokensIn,
			WarmFreshTokens: warmFresh.TokensIn,
		})
	}
	return out, nil
}

// measureServeBench runs the multi-tenant scheduler load benchmark
// (docs/SCHEDULING.md) against an in-process wasabid: many simulated
// tenants submit single-app jobs concurrently and the driver waits for
// all of them, capturing throughput plus the server-side wait/run
// latency quantiles and the busy-slot high-water mark. Wall-clock
// numbers are honest measurements; Completed is exact.
func measureServeBench(workers int) (*obs.ServeBench, error) {
	observer := obs.New()
	ca, err := cache.New(cache.Options{Metrics: observer.Reg()})
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{
		Addr:            "127.0.0.1:0",
		QueueDepth:      4,
		SchedulerSlots:  4,
		PipelineWorkers: workers,
		Cache:           ca,
		Obs:             observer,
	})
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best-effort teardown
	}()
	sb, err := server.RunLoad("http://"+srv.Addr(), server.LoadOptions{
		Tenants: 12,
		Jobs:    2,
		Apps:    []string{"HD"},
	})
	if err != nil {
		return nil, err
	}
	server.AttachSchedStats(sb, observer.Reg().Snapshot())
	return sb, nil
}

// measureRestartBench measures the restart-warm trajectory
// (docs/PERFORMANCE.md): a cold full-corpus run populates a disk-backed
// cache, then every in-memory handle — cache, snapshot store, metrics
// registry — is rebuilt over the same directory (what a process restart
// leaves behind) and the corpus re-run. Wall times are honest
// measurements; the warm counters are deterministic — zero parses, zero
// extractions, zero fresh tokens, one facts hydration per file.
func measureRestartBench(workers int) (*obs.RestartBench, error) {
	dir, err := os.MkdirTemp("", "wasabi-restartbench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	run := func() (time.Duration, llm.Usage, *obs.Observer, *cache.Cache, error) {
		observer := obs.New()
		ca, err := cache.New(cache.Options{Dir: dir, Metrics: observer.Reg()})
		if err != nil {
			return 0, llm.Usage{}, nil, nil, err
		}
		opts := core.DefaultOptions()
		opts.Workers = workers
		opts.Cache = ca
		opts.Source = source.NewStore(observer.Reg())
		opts.Obs = observer
		w := core.New(opts)
		start := time.Now()
		_, err = w.RunCorpus(corpus.Apps())
		return time.Since(start), w.LLMUsage(), observer, ca, err
	}
	coldWall, _, _, _, err := run()
	if err != nil {
		return nil, err
	}
	warmWall, warmFresh, observer, ca, err := run()
	if err != nil {
		return nil, err
	}
	s := observer.Reg().Snapshot()
	return &obs.RestartBench{
		ColdWallMS:      float64(coldWall) / float64(time.Millisecond),
		WarmWallMS:      float64(warmWall) / float64(time.Millisecond),
		WarmFreshTokens: warmFresh.TokensIn,
		WarmParses:      s.Counter("source_parse_total"),
		WarmExtracts:    s.Counter("source_derived_computes_total", "kind", sast.ExtractKind),
		WarmHydrations:  s.Counter("source_derived_hydrations_total", "kind", sast.ExtractKind),
		DiskLoads:       ca.Stats().DiskLoads,
	}, nil
}

// measureEditBench measures the warm single-file-edit trajectory the
// daemon lives on (docs/PERFORMANCE.md): one app is copied to a scratch
// directory, run cold and warm against one store+cache, then one source
// file is touched and the app re-analyzed. The third run's counter
// deltas are deterministic — one parse, one extraction, one review miss.
func measureEditBench(workers int) (*obs.EditBench, error) {
	app, err := corpus.ByCode("HD")
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "wasabi-editbench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	entries, err := os.ReadDir(app.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(app.Dir, e.Name()))
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			return nil, err
		}
		if source.IsSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("benchreport: app %s has no source files", app.Code)
	}
	app.Dir = dir

	observer := obs.New()
	ca, err := cache.New(cache.Options{Metrics: observer.Reg()})
	if err != nil {
		return nil, err
	}
	store := source.NewStore(observer.Reg())
	run := func() (time.Duration, llm.Usage, error) {
		opts := core.DefaultOptions()
		opts.Workers = workers
		opts.Cache = ca
		opts.Source = store
		opts.Obs = observer
		w := core.New(opts)
		start := time.Now()
		_, err := w.RunCorpus([]corpus.App{app})
		return time.Since(start), w.LLMUsage(), err
	}
	for i := 0; i < 2; i++ { // cold, then warm
		if _, _, err := run(); err != nil {
			return nil, err
		}
	}

	touched := filepath.Join(dir, names[0])
	src, err := os.ReadFile(touched)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(touched, append(src, []byte("\n// touched by benchreport\n")...), 0o644); err != nil {
		return nil, err
	}

	before := observer.Reg().Snapshot()
	missBefore := ca.Stats().Misses[cache.StageReview]
	wall, fresh, err := run()
	if err != nil {
		return nil, err
	}
	after := observer.Reg().Snapshot()
	return &obs.EditBench{
		WallMS:       float64(wall) / float64(time.Millisecond),
		FreshTokens:  fresh.TokensIn,
		Parses:       after.Counter("source_parse_total") - before.Counter("source_parse_total"),
		Extracts:     after.Counter("source_derived_computes_total", "kind", sast.ExtractKind) - before.Counter("source_derived_computes_total", "kind", sast.ExtractKind),
		ReviewMisses: ca.Stats().Misses[cache.StageReview] - missBefore,
	}, nil
}
