// Command corpusgen generates, verifies, and inspects seeded synthetic
// retry corpora (docs/CORPUSGEN.md).
//
// Usage:
//
//	corpusgen -out DIR [-seed N] [-scale N] [-buggy class=frac,...] [-workers N]
//	corpusgen -verify -root DIR [-workers N]
//	corpusgen -envelope -root DIR [-tolerance F]
//	corpusgen -table -root DIR
//
// The default mode generates: it resolves the configuration into a
// corpus plan and writes the tree under -out — one Go source directory
// per app, corpusgen.json (the spec), and ledger.json (the all-candidate
// ground-truth ledger). Generation is deterministic: the same seed and
// knobs produce a byte-identical tree at any -workers setting.
//
// -verify runs the full pipeline (identification, fault-injection
// workflow, static workflow, corpus-wide IF analysis) over the generated
// corpus and rewrites ledger.json with candidates promoted to verified
// wherever an end-to-end witness was recorded. Error-code structures
// stay candidates by construction — they are outside the
// exception-injection scope.
//
// -envelope profiles the generated population against the hand-written
// seed corpus data card and prints any dimension outside the tolerance.
//
// -table prints the per-app composition table (the docs/CORPUS.md
// format) computed from the generated manifests.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/apps/meta"
	"wasabi/internal/core"
	"wasabi/internal/corpusgen"
)

func main() {
	out := flag.String("out", "", "generate: output directory for the corpus tree")
	seed := flag.Uint64("seed", 1, "generate: random seed (same seed + knobs = byte-identical tree)")
	scale := flag.Int("scale", corpusgen.DefaultScale,
		fmt.Sprintf("generate: corpus size as a multiple of the 98-structure seed (1..%d)", corpusgen.MaxScale))
	buggy := flag.String("buggy", "", "generate: per-bug-class fraction overrides, e.g. \"missing-cap=0.25,missing-delay=0.1\"")
	workers := flag.Int("workers", 0, "worker pool size; 0 = one per CPU")
	verify := flag.Bool("verify", false, "run the full pipeline over -root and promote ledger candidates to verified")
	envelope := flag.Bool("envelope", false, "check -root's population against the seed corpus envelope")
	table := flag.Bool("table", false, "print -root's per-app composition table")
	root := flag.String("root", "", "corpus root for -verify / -envelope / -table")
	tolerance := flag.Float64("tolerance", corpusgen.DefaultTolerance, "envelope: absolute tolerance on population fractions")
	flag.Parse()

	switch {
	case *verify:
		runVerify(*root, *workers)
	case *envelope:
		runEnvelope(*root, *tolerance)
	case *table:
		runTable(*root)
	default:
		runGenerate(*out, *seed, *scale, *buggy, *workers)
	}
}

func fail(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "corpusgen:") {
		msg = "corpusgen: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}

func runGenerate(out string, seed uint64, scale int, buggy string, workers int) {
	if out == "" {
		fmt.Fprintln(os.Stderr, "corpusgen: -out is required (or use -verify/-envelope/-table with -root)")
		os.Exit(2)
	}
	cfg := corpusgen.Config{Seed: seed, Scale: scale}
	if buggy != "" {
		cfg.Buggy = make(map[string]float64)
		for _, pair := range strings.Split(buggy, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				fail(fmt.Errorf("malformed -buggy entry %q (want class=fraction)", pair))
			}
			frac, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fail(fmt.Errorf("malformed -buggy fraction %q: %v", v, err))
			}
			cfg.Buggy[k] = frac
		}
	}
	c, err := corpusgen.Generate(cfg)
	if err != nil {
		fail(err)
	}
	if err := corpusgen.Write(c, out, workers); err != nil {
		fail(err)
	}
	manifests := c.Manifests()
	bugs := 0
	for _, s := range manifests {
		if s.HasBug() {
			bugs++
		}
	}
	fmt.Printf("corpusgen: wrote %d apps / %d structures (%d buggy) to %s (seed %d, scale %d)\n",
		len(c.Apps), len(manifests), bugs, out, cfg.Seed, cfg.Scale)
}

func runVerify(root string, workers int) {
	if root == "" {
		fmt.Fprintln(os.Stderr, "corpusgen: -verify requires -root")
		os.Exit(2)
	}
	apps, spec, err := corpusgen.LoadApps(root)
	if err != nil {
		fail(err)
	}
	opts := core.DefaultOptions()
	opts.Workers = workers
	run, err := core.New(opts).RunCorpus(apps)
	if err != nil {
		fail(err)
	}
	led := corpusgen.Verify(spec, run)
	if err := corpusgen.WriteLedger(root, led); err != nil {
		fail(err)
	}
	fmt.Printf("corpusgen: verified %d / %d structures (%d candidates remain) — ledger updated\n",
		led.Verified, len(led.Entries), led.Candidates)
	for _, e := range led.Entries {
		if e.Status == corpusgen.StatusVerified && e.Bug != "" {
			fmt.Printf("  %-44s %-22s %s\n", e.Key, e.Bug, e.Witness)
		}
	}
}

func runEnvelope(root string, tolerance float64) {
	if root == "" {
		fmt.Fprintln(os.Stderr, "corpusgen: -envelope requires -root")
		os.Exit(2)
	}
	spec, err := corpusgen.Load(root)
	if err != nil {
		fail(err)
	}
	gen := corpusgen.EnvelopeOf(spec.Manifests())
	ref := corpusgen.EnvelopeOf(corpus.Manifests())
	devs := gen.Check(ref, tolerance)
	fmt.Print(corpusgen.FormatDeviations(devs))
	if len(devs) > 0 {
		os.Exit(1)
	}
}

func runTable(root string) {
	if root == "" {
		fmt.Fprintln(os.Stderr, "corpusgen: -table requires -root")
		os.Exit(2)
	}
	spec, err := corpusgen.Load(root)
	if err != nil {
		fail(err)
	}
	manifests := spec.Manifests()
	var rows []meta.AppCount
	for _, a := range spec.Apps {
		rows = append(rows, meta.CountApp(a.Code, manifests))
	}
	fmt.Print(meta.CompositionTable(rows))
}
