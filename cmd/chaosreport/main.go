// Command chaosreport measures the pipeline under an unreliable LLM
// backend: it runs the full evaluation (§4 scoring against corpus ground
// truth) at increasing transient-fault rates plus a hard outage, and
// prints the markdown table recorded in EXPERIMENTS.md — true/false
// positives per workflow, degraded-file counts, and the §4.3 cost — so
// the "budgeted retry keeps results and cost stable" claim is a number,
// not an assertion.
//
// Usage:
//
//	go run ./cmd/chaosreport
//
// Output is deterministic (seeded model, seeded faults, virtual time).
package main

import (
	"fmt"
	"os"

	"wasabi/internal/core"
	"wasabi/internal/evaluation"
	"wasabi/internal/llm"
)

// row is one measured fault level.
type row struct {
	name    string
	profile *llm.FaultProfile
}

func main() {
	rows := []row{
		{"0% (perfect)", nil},
		{"0% (stack on)", &llm.FaultProfile{}},
		{"5% (light)", &llm.FaultProfile{TimeoutDenom: 60, RateLimitDenom: 60, ServerErrorDenom: 60}},
		{"20% (heavy)", &llm.FaultProfile{TimeoutDenom: 15, RateLimitDenom: 15, ServerErrorDenom: 15}},
		{"hard outage", &llm.FaultProfile{HardOutage: true}},
	}

	fmt.Println("| Fault level | Dynamic (true_FP) | Static WHEN (true_FP) | IF (true_FP) | Degraded files | LLM calls | Tokens | Cost |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, r := range rows {
		opts := core.DefaultOptions()
		opts.LLM.Fault = r.profile
		ev, err := evaluation.RunWith(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosreport: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		var dyn, static evaluation.Score
		degraded := 0
		for _, ar := range ev.Apps {
			dyn.Add(ar.DynScores.Total())
			static.Add(ar.StaticScore.Total())
			degraded += len(ar.ID.Degraded)
		}
		fmt.Printf("| %s | %d_%d | %d_%d | %d_%d | %d | %d | %.1fK | $%.2f |\n",
			r.name,
			dyn.True, dyn.FP,
			static.True, static.FP,
			ev.IFScore.True, ev.IFScore.FP,
			degraded,
			ev.Usage.Calls, float64(ev.Usage.TokensIn)/1000, ev.Usage.CostUSD)
	}
}
