// Command chaosreport measures the pipeline under an unreliable LLM
// backend: it runs the full evaluation (§4 scoring against corpus ground
// truth) at increasing transient-fault rates plus a hard outage, then
// again over multi-backend failover topologies, and prints the markdown
// tables recorded in EXPERIMENTS.md — true/false positives per workflow,
// degraded-file counts, and the §4.3 cost — so the "budgeted retry keeps
// results and cost stable" and "failover survives a primary outage with
// zero degraded files" claims are numbers, not assertions.
//
// Usage:
//
//	go run ./cmd/chaosreport
//
// Output is deterministic (seeded model, seeded faults, virtual time).
package main

import (
	"fmt"
	"os"

	"wasabi/internal/core"
	"wasabi/internal/evaluation"
	"wasabi/internal/llm"
)

// row is one measured fault level (single-backend chaos table).
type row struct {
	name    string
	profile *llm.FaultProfile
}

// topoRow is one measured backend topology (failover table).
type topoRow struct {
	name string
	spec string
}

// measure runs the evaluation and prints one markdown result row.
func measure(name string, opts core.Options) {
	ev, err := evaluation.RunWith(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosreport: %s: %v\n", name, err)
		os.Exit(1)
	}
	var dyn, static evaluation.Score
	degraded := 0
	for _, ar := range ev.Apps {
		dyn.Add(ar.DynScores.Total())
		static.Add(ar.StaticScore.Total())
		degraded += len(ar.ID.Degraded)
	}
	fmt.Printf("| %s | %d_%d | %d_%d | %d_%d | %d | %d | %.1fK | $%.2f |\n",
		name,
		dyn.True, dyn.FP,
		static.True, static.FP,
		ev.IFScore.True, ev.IFScore.FP,
		degraded,
		ev.Usage.Calls, float64(ev.Usage.TokensIn)/1000, ev.Usage.CostUSD)
}

func header() {
	fmt.Println("| Fault level | Dynamic (true_FP) | Static WHEN (true_FP) | IF (true_FP) | Degraded files | LLM calls | Tokens | Cost |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
}

func main() {
	rows := []row{
		{"0% (perfect)", nil},
		{"0% (stack on)", &llm.FaultProfile{}},
		{"5% (light)", &llm.FaultProfile{TimeoutDenom: 60, RateLimitDenom: 60, ServerErrorDenom: 60}},
		{"20% (heavy)", &llm.FaultProfile{TimeoutDenom: 15, RateLimitDenom: 15, ServerErrorDenom: 15}},
		{"hard outage", &llm.FaultProfile{HardOutage: true}},
	}
	header()
	for _, r := range rows {
		opts := core.DefaultOptions()
		opts.LLM.Fault = r.profile
		measure(r.name, opts)
	}

	// Failover topologies: the same scoring, but reviews route across a
	// multi-backend topology (docs/RESILIENCE.md "Backend topology"). The
	// headline row is the hard primary outage: with a healthy secondary,
	// every review fails over and completes — zero degraded files, scores
	// identical to the perfect single-backend baseline.
	topos := []topoRow{
		{"single healthy", "primary=sim"},
		{"primary outage → secondary", "primary=sim:outage;secondary=sim"},
		{"flaky primary → secondary", "primary=sim:heavy;secondary=sim"},
	}
	fmt.Println()
	fmt.Println("Failover topologies (multi-backend routing):")
	fmt.Println()
	header()
	for _, tr := range topos {
		specs, err := llm.ParseBackends(tr.spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosreport: %s: %v\n", tr.name, err)
			os.Exit(1)
		}
		opts := core.DefaultOptions()
		opts.LLM.Backends = specs
		measure(tr.name, opts)
	}
}
