// Command loadgen hammers a wasabid daemon with analysis jobs from many
// simulated tenants and reports throughput, backpressure and latency —
// the load side of the multi-tenant scheduler (docs/SCHEDULING.md).
//
// Usage:
//
//	loadgen -tenants 100 -jobs 2 -apps HD             # self-hosted daemon
//	loadgen -addr http://localhost:8788 -tenants 100  # running daemon
//	loadgen -corpus DIR -gen-apps 8 -tenants 50       # generated corpus
//
// With -addr empty, loadgen starts an in-process wasabid (flags -slots,
// -quota, -queue, -workers shape it) so the bench also captures the
// server-side scheduler stats (slot high-water mark, wait/run latency
// quantiles); against a remote daemon those fields read zero and the
// client-side numbers stand alone. The result is the `serve` section of
// the BENCH_pipeline.json schema, printed as JSON on stdout.
//
// -corpus points the in-process daemon at a generated corpus root
// (cmd/corpusgen, docs/CORPUSGEN.md) instead of the built-in seed
// corpus, and -gen-apps N makes each job analyze the first N generated
// applications — the knob for driving the scheduler with synthetic
// populations much larger than the seed. An explicit -apps list of
// generated codes ("G001,G002") overrides -gen-apps.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/cache"
	"wasabi/internal/corpusgen"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/server"
)

func main() {
	addr := flag.String("addr", "", "target daemon base URL; empty starts an in-process wasabid")
	tenants := flag.Int("tenants", 100, "simulated tenants")
	jobs := flag.Int("jobs", 2, "jobs submitted per tenant")
	appsFlag := flag.String("apps", "HD", "comma-separated corpus codes per job; empty = full corpus")
	corpusRoot := flag.String("corpus", "", "in-process daemon: generated corpus root (cmd/corpusgen); empty = built-in seed corpus")
	genApps := flag.Int("gen-apps", 1, "with -corpus: analyze the first N generated apps per job (ignored when -apps is set explicitly)")
	slots := flag.Int("slots", 0, "in-process daemon: scheduler worker slots (0 = auto)")
	quota := flag.Int("quota", 0, "in-process daemon: per-tenant in-flight quota (0 = slots)")
	queue := flag.Int("queue", 4, "in-process daemon: per-tenant queue depth")
	workers := flag.Int("workers", 1, "in-process daemon: pipeline workers per job")
	backends := flag.String("llm-backends", "", "in-process daemon: multi-backend LLM topology (name=sim[:profile];... — see docs/RESILIENCE.md)")
	hedgeAfter := flag.Duration("llm-hedge-after", 0, "in-process daemon: hedge onto the next healthy backend after this much silence")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	flag.Parse()

	var genCorpus []corpus.App
	if *corpusRoot != "" {
		if *addr != "" {
			fatal(fmt.Errorf("-corpus shapes the in-process daemon and cannot be combined with -addr"))
		}
		var err error
		genCorpus, _, err = corpusgen.LoadApps(*corpusRoot)
		if err != nil {
			fatal(err)
		}
	}

	var codes []string
	appsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "apps" {
			appsSet = true
		}
	})
	switch {
	case genCorpus != nil && !appsSet:
		// Drive the daemon with the first -gen-apps generated apps.
		n := *genApps
		if n <= 0 || n > len(genCorpus) {
			n = len(genCorpus)
		}
		for _, app := range genCorpus[:n] {
			codes = append(codes, app.Code)
		}
	case *appsFlag != "":
		codes = strings.Split(*appsFlag, ",")
	}
	opt := server.LoadOptions{Tenants: *tenants, Jobs: *jobs, Apps: codes, Timeout: *timeout}

	base := *addr
	var observer *obs.Observer
	if base == "" {
		observer = obs.New()
		ca, err := cache.New(cache.Options{Metrics: observer.Reg()})
		if err != nil {
			fatal(err)
		}
		scfg := server.Config{
			Addr:            "127.0.0.1:0",
			QueueDepth:      *queue,
			SchedulerSlots:  *slots,
			TenantQuota:     *quota,
			PipelineWorkers: *workers,
			Cache:           ca,
			Obs:             observer,
			Corpus:          genCorpus,
		}
		if *backends != "" {
			specs, err := llm.ParseBackends(*backends)
			if err != nil {
				fatal(err)
			}
			scfg.LLMBackends = specs
			scfg.LLMHedgeAfter = *hedgeAfter
		}
		srv := server.New(scfg)
		if err := srv.Start(); err != nil {
			fatal(err)
		}
		base = "http://" + srv.Addr()
		fmt.Fprintf(os.Stderr, "loadgen: in-process wasabid on %s\n", base)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort teardown
		}()
	}

	sb, err := server.RunLoad(base, opt)
	if err != nil {
		fatal(err)
	}
	if observer != nil {
		server.AttachSchedStats(sb, observer.Reg().Snapshot())
	}
	sampleTrace(base)
	sampleBackends(base)
	data, err := json.MarshalIndent(sb, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
}

// sampleTrace spot-checks the daemon's per-job tracing after the run:
// it reads the trace index and pulls the newest job's span tree,
// reporting what one job's trace looks like under this load (span count
// and serialized size). Diagnostics only — printed to stderr, never part
// of the bench JSON — and best-effort: a pre-tracing daemon just reports
// that traces are unavailable.
func sampleTrace(base string) {
	var idx struct {
		Traces []struct {
			JobID      string  `json:"job_id"`
			Tenant     string  `json:"tenant"`
			Spans      int     `json:"spans"`
			Bytes      int     `json:"bytes"`
			DurationMS float64 `json:"duration_ms"`
		} `json:"traces"`
	}
	resp, err := http.Get(base + "/v1/traces")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: trace index unavailable: %v\n", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "loadgen: trace index unavailable (status %d)\n", resp.StatusCode)
		return
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil || len(idx.Traces) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: trace index empty")
		return
	}
	newest := idx.Traces[0]
	fmt.Fprintf(os.Stderr, "loadgen: %d traces retained; newest %s (tenant %s): %d spans, %d bytes, %.1f ms; GET %s/v1/jobs/%s/trace\n",
		len(idx.Traces), newest.JobID, newest.Tenant, newest.Spans, newest.Bytes, newest.DurationMS, base, newest.JobID)
}

// sampleBackends reports the daemon's multi-backend routing counters
// (llm_backend_* — failovers, hedges, coalesced reviews) after the run.
// Diagnostics only, stderr only, best-effort: a single-backend daemon
// has no such series and prints nothing.
func sampleBackends(base string) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "llm_backend_") {
			lines = append(lines, line)
		}
	}
	if len(lines) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "loadgen: multi-backend routing under this load:\n")
	for _, line := range lines {
		fmt.Fprintf(os.Stderr, "loadgen:   %s\n", line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
