// Command wasabi runs the WASABI retry-bug detection workflows over the
// corpus applications.
//
// Usage:
//
//	wasabi [-app HD] [-workflow all|dynamic|static|if] [-workers N] [-v]
//	       [-json] [-corpus DIR]
//	       [-cache-dir DIR] [-cache-bytes N]
//	       [-llm-fault-profile none|light|heavy|outage|k=v,...]
//	       [-llm-outage-after N]
//	       [-llm-backends name=sim[:profile];name=http:URL;...]
//	       [-llm-hedge-after DUR]
//	       [-metrics-out m.json] [-trace-out t.json]
//
// With no -app, every corpus application is processed. -workers bounds the
// pipeline's worker pool (0 = one per CPU); output is byte-identical at
// every setting, so -workers 1 merely reproduces the original sequential
// timing.
//
// -corpus points the run at a generated corpus root (cmd/corpusgen,
// docs/CORPUSGEN.md) instead of the built-in seed corpus; -app then
// selects generated codes ("G001", ...).
//
// -json replaces the text report with the canonical schema-versioned JSON
// document (internal/report — the same encoder the wasabid service
// returns), ignoring -workflow and -v.
//
// -cache-dir enables the content-addressed analysis cache with disk
// persistence (docs/SERVICE.md): a second invocation over unchanged
// sources re-reads memoized reviews instead of re-spending LLM tokens,
// and prints identical output. -cache-bytes bounds the in-memory tier.
// Cache statistics go to stderr, so stdout stays byte-identical between
// cold and warm runs.
//
// -llm-fault-profile runs the pipeline against an unreliable simulated
// LLM backend (docs/RESILIENCE.md): transient faults are retried through
// the resilience stack, permanent ones degrade the affected files to
// static-only analysis, and stdout stays byte-identical for a fixed
// (seed, profile) at every -workers setting. -llm-outage-after N takes
// the backend hard-down from the Nth review onward.
//
// -llm-backends routes reviews across an ordered multi-backend topology
// with per-backend circuit breakers and health-gated failover
// (docs/RESILIENCE.md "Backend topology"); -llm-hedge-after additionally
// hedges slow calls onto the next healthy backend. Mutually exclusive
// with -llm-fault-profile — give failing backends their own profiles in
// the topology (for example "primary=sim:outage;secondary=sim").
//
// -metrics-out and -trace-out instrument the run (docs/OBSERVABILITY.md):
// the former writes the metrics snapshot as JSON (its counters section is
// byte-identical at every -workers setting; timings vary), the latter
// writes the stage spans in Chrome trace-event JSON for Perfetto /
// about://tracing. Either flag also prints the end-of-run metrics in
// Prometheus text exposition format (the wasabid /metrics rendering) —
// on stderr, so the deterministic report stream on stdout stays clean.
package main

import (
	"flag"
	"fmt"
	"os"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/cache"
	"wasabi/internal/core"
	"wasabi/internal/corpusgen"
	"wasabi/internal/llm"
	"wasabi/internal/obs"
	"wasabi/internal/oracle"
	"wasabi/internal/report"
)

func main() {
	appCode := flag.String("app", "", "application short code (HD, HB, ...); empty = all")
	corpusRoot := flag.String("corpus", "", "generated corpus root (cmd/corpusgen); empty = built-in seed corpus")
	workflow := flag.String("workflow", "all", "workflow: all, dynamic, static, or if")
	workers := flag.Int("workers", 0, "worker pool size; 0 = one per CPU, 1 = sequential")
	verbose := flag.Bool("v", false, "print per-structure identification details")
	jsonOut := flag.Bool("json", false, "print the canonical JSON report document instead of text")
	cacheDir := flag.String("cache-dir", "", "enable the analysis cache, persisted in this directory (see docs/SERVICE.md)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory cache byte budget (0 = default; needs -cache-dir)")
	faultProfile := flag.String("llm-fault-profile", "",
		fmt.Sprintf("simulate an unreliable LLM backend: %v or key=value list (see docs/RESILIENCE.md); empty = perfect backend", llm.ProfileNames()))
	outageAfter := flag.Int("llm-outage-after", 0, "take the LLM backend hard-down from the Nth review onward (0 = never)")
	backends := flag.String("llm-backends", "",
		"route reviews across an ordered multi-backend topology: \"name=sim[:profile];name=http:URL;...\" (see docs/RESILIENCE.md); mutually exclusive with -llm-fault-profile")
	hedgeAfter := flag.Duration("llm-hedge-after", 0,
		"launch a hedged attempt on the next healthy backend after this much silence (0 = no hedging; needs -llm-backends)")
	metricsOut := flag.String("metrics-out", "", "write the run's metrics snapshot (JSON) to this file")
	traceOut := flag.String("trace-out", "", "write the run's spans (Chrome trace-event JSON) to this file")
	flag.Parse()

	switch *workflow {
	case "all", "dynamic", "static", "if":
	default:
		fmt.Fprintf(os.Stderr, "wasabi: unknown -workflow %q (want all, dynamic, static, or if)\n", *workflow)
		os.Exit(2)
	}

	apps := corpus.Apps()
	if *corpusRoot != "" {
		var err error
		apps, _, err = corpusgen.LoadApps(*corpusRoot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *appCode != "" {
		selected := apps[:0:0]
		for _, app := range apps {
			if app.Code == *appCode {
				selected = append(selected, app)
			}
		}
		if len(selected) != 1 {
			fmt.Fprintf(os.Stderr, "wasabi: unknown app code %q\n", *appCode)
			os.Exit(2)
		}
		apps = selected
	}
	for _, app := range apps {
		if err := core.VerifySources(app); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	opts := core.DefaultOptions()
	opts.Workers = *workers
	if *faultProfile != "" || *outageAfter > 0 {
		profile, err := llm.ParseFaultProfile(*faultProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *outageAfter > 0 {
			profile.OutageAfterFiles = *outageAfter
		}
		opts.LLM.Fault = &profile
	}
	if *backends != "" {
		if opts.LLM.Fault != nil {
			fmt.Fprintln(os.Stderr, "wasabi: -llm-backends and -llm-fault-profile/-llm-outage-after are mutually exclusive; put per-backend fault profiles in the topology (name=sim:profile)")
			os.Exit(2)
		}
		specs, err := llm.ParseBackends(*backends)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.LLM.Backends = specs
		opts.LLM.HedgeAfter = *hedgeAfter
	} else if *hedgeAfter > 0 {
		fmt.Fprintln(os.Stderr, "wasabi: -llm-hedge-after needs -llm-backends (hedging routes across a topology)")
		os.Exit(2)
	}
	observed := *metricsOut != "" || *traceOut != ""
	if observed {
		opts.Obs = obs.New()
	}
	var ca *cache.Cache
	if *cacheDir != "" {
		var err error
		ca, err = cache.New(cache.Options{Dir: *cacheDir, MaxBytes: *cacheBytes, Metrics: opts.Obs.Reg()})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Cache = ca
	}
	w := core.New(opts)

	// The runner executes identification and both workflows concurrently
	// across apps and merges deterministically; printing below stays in
	// corpus order and honours -workflow.
	cr, err := w.RunCorpus(apps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if ca != nil {
		// Stats go to stderr: stdout must stay byte-identical between a
		// cold and a warm run of the same corpus.
		st := ca.Stats()
		fu := w.LLMUsage()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d evictions, %d entries, %d bytes; fresh LLM spend %d calls / %d tokens\n",
			st.Hits[cache.StageReview]+st.Hits[cache.StageAnalysis],
			st.Misses[cache.StageReview]+st.Misses[cache.StageAnalysis],
			st.Evictions, st.Entries, st.Bytes, fu.Calls, fu.TokensIn)
	}

	if *jsonOut {
		doc, err := report.Marshal(report.Build(cr))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Stdout.Write(doc)
		if observed {
			if err := writeArtifacts(opts.Obs, *metricsOut, *traceOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	for _, ar := range cr.Apps {
		id := ar.ID
		fmt.Printf("== %s (%s) ==\n", ar.App.Name, ar.App.Code)
		fmt.Printf("identified %d retry structures (%d keyworded loops, %d structural candidates before filter, %d files too large for the LLM)\n",
			len(id.Structures), id.KeywordedLoops, id.CandidateLoops, len(id.TruncatedFiles))
		if len(id.Degraded) > 0 {
			fmt.Printf("degraded: %d file reviews lost to backend faults (static-only fallback)\n", len(id.Degraded))
			for _, d := range id.Degraded {
				fmt.Printf("  DEGRADED %-40s %s\n", d.File, d.Reason)
			}
		}
		if *verbose {
			for _, s := range id.Structures {
				fmt.Printf("  %-55s %-12s codeql=%-5v llm=%-5v triggers=%d\n",
					s.Coordinator, s.Mechanism, s.FoundBy.CodeQL, s.FoundBy.LLM, len(s.Triplets))
			}
		}

		if *workflow == "all" || *workflow == "dynamic" {
			res := ar.Dyn
			fmt.Printf("dynamic: %d/%d tests cover retry, %d/%d structures tested, plan %d entries, runs %d (naive %d)\n",
				res.TestsCoveringRetry, res.TestsTotal, res.StructuresTested, res.StructuresTotal,
				res.PlanEntries, res.PlannedRuns, res.NaiveRuns)
			printReports(res.Reports)
		}
		if *workflow == "all" || *workflow == "static" {
			st := ar.Static
			fmt.Printf("static (LLM): %d WHEN reports\n", len(st.WhenReports))
			for _, r := range st.WhenReports {
				fmt.Printf("  [%s] %s (%s)\n", r.Kind, r.Coordinator, r.File)
			}
		}
		fmt.Println()
	}

	if *workflow == "all" || *workflow == "if" {
		fmt.Println("== IF-bug retry-ratio analysis (corpus-wide) ==")
		for _, r := range cr.IFRatios {
			if r.Retried > 0 && r.Retried < r.Total {
				fmt.Printf("  %-35s retried %d/%d\n", r.Exception, r.Retried, r.Total)
			}
		}
		for _, rep := range cr.IFReports {
			verb := "not retried"
			if rep.Retried {
				verb = "retried"
			}
			fmt.Printf("  OUTLIER %s %s in %s (%s overall)\n", rep.Exception, verb, rep.Coordinator, rep.Ratio.String())
		}
	}

	if cr.Degraded {
		fmt.Printf("\nRUN DEGRADED: LLM backend outage — LLM-dependent findings under-report; static structural results are complete\n")
	}

	u := cr.Usage
	fmt.Printf("\nLLM usage: %d calls, %.1fK tokens, $%.2f\n", u.Calls, float64(u.TokensIn)/1000, u.CostUSD)

	if observed {
		if err := writeArtifacts(opts.Obs, *metricsOut, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeArtifacts writes the requested observability artifacts and prints
// the metrics in Prometheus text exposition format on stderr — the same
// rendering the wasabid daemon serves at /metrics.
func writeArtifacts(o *obs.Observer, metricsOut, traceOut string) error {
	snap := o.Reg().Snapshot()
	if metricsOut != "" {
		data, err := snap.MarshalIndent()
		if err != nil {
			return fmt.Errorf("marshal metrics: %w", err)
		}
		if err := os.WriteFile(metricsOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		if err := o.Trc().WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("write trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	return obs.WriteText(os.Stderr, snap)
}

func printReports(reports []oracle.Report) {
	sorted := append([]oracle.Report(nil), reports...)
	core.SortReports(sorted)
	for _, r := range sorted {
		fmt.Printf("  [%s] %s — %s (test %s)\n", r.Kind, r.Coordinator, r.Details, r.Test)
	}
}
