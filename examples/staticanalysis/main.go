// Static checking workflow on the HBase miniature: the CodeQL-analogue
// loop analysis, the simulated-LLM review with the Q1–Q4 prompt chain,
// and the corpus-wide retry-ratio IF-bug analysis (§3.2).
//
//	go run ./examples/staticanalysis
package main

import (
	"fmt"
	"log"
	"path/filepath"
	"sort"

	"wasabi/internal/apps/corpus"
	"wasabi/internal/llm"
	"wasabi/internal/sast"
)

func main() {
	app, err := corpus.ByCode("HB")
	if err != nil {
		log.Fatal(err)
	}

	// Technique 1: control-flow + retry-naming analysis over real Go ASTs.
	analysis, err := sast.AnalyzeDir(app.Dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structural analysis: %d loop candidates, %d survive the retry-keyword filter\n",
		analysis.CandidateLoops, len(analysis.Loops))
	for _, loop := range analysis.Loops {
		fmt.Printf("  %-45s (%s:%d, %d injectable triggers)\n",
			loop.Coordinator, loop.File, loop.Line, len(loop.Triplets))
	}

	// Technique 2: the simulated GPT-4 review, file by file.
	fmt.Println("\nLLM review (Q1 retry? / Q2 sleep? / Q3 cap? / Q4 poll?):")
	client := llm.NewClient(llm.DefaultConfig())
	files := make([]string, 0, len(analysis.Files))
	for f := range analysis.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		rev, err := client.ReviewFile(filepath.Join(app.Dir, f))
		if err != nil {
			log.Fatal(err)
		}
		if rev.TruncatedContext {
			fmt.Printf("  %-18s too large for the model's context (%d bytes) — retry missed\n", f, rev.Size)
			continue
		}
		for _, find := range rev.Findings {
			fmt.Printf("  %-18s %-42s mech=%-12s sleep=%-5v cap=%v\n",
				f, find.Coordinator, find.Mechanism, find.SleepsBeforeRetry, find.HasCap)
		}
		for _, bug := range llm.DetectWhenBugs(rev) {
			fmt.Printf("  %-18s   -> WHEN bug: %s in %s\n", f, bug.Kind, bug.Coordinator)
		}
	}

	// The IF-bug ratio analysis needs the whole corpus for context.
	var analyses []*sast.Analysis
	for _, a := range corpus.Apps() {
		an, err := sast.AnalyzeDir(a.Dir)
		if err != nil {
			log.Fatal(err)
		}
		analyses = append(analyses, an)
	}
	fmt.Println("\ncorpus-wide retry-ratio outliers (IF bugs):")
	_, reports := sast.RatioAnalysis(analyses, sast.DefaultRatioOptions())
	for _, r := range reports {
		verb := "NOT retried"
		if r.Retried {
			verb = "retried"
		}
		fmt.Printf("  %s %s in %s (%s)\n", r.Exception, verb, r.Coordinator, r.Ratio.String())
	}

	u := client.Usage()
	fmt.Printf("\nLLM usage for the HBase review: %d calls, %.1fK tokens, $%.2f\n",
		u.Calls, float64(u.TokensIn)/1000, u.CostUSD)
}
