// Resilience-library walkthrough: the same operation run under the four
// retry policies a "resilience framework" offers (§1 of the paper), and a
// demonstration of what the framework canNOT fix — the seeded wrong-policy
// anti-pattern from the Hive miniature, where a cancelled task keeps being
// retried.
//
//	go run ./examples/resilience
package main

import (
	"context"
	"fmt"
	"time"

	"wasabi/internal/apps/hive"
	"wasabi/internal/errmodel"
	"wasabi/internal/resilience"
	"wasabi/internal/trace"
	"wasabi/internal/vclock"
)

// flaky fails transiently n times, then succeeds.
func flaky(n int) func(context.Context) error {
	calls := 0
	return func(context.Context) error {
		calls++
		if calls <= n {
			return errmodel.New("ConnectException", "transient")
		}
		return nil
	}
}

func main() {
	run := trace.NewRun("resilience-demo")
	ctx := trace.With(context.Background(), run)

	policies := []struct {
		name string
		p    *resilience.Policy
	}{
		{"fixed delay, 5 attempts", resilience.NewPolicy(5, resilience.WithFixedDelay(time.Second))},
		{"exponential backoff", resilience.NewPolicy(6, resilience.WithExponentialBackoff(200*time.Millisecond, 5*time.Second))},
		{"network errors only", resilience.NewPolicy(5,
			resilience.WithFixedDelay(500*time.Millisecond),
			resilience.WithRetryOn(func(err error) bool { return errmodel.IsClass(err, "ConnectException") }))},
		{"deadline-bounded", resilience.NewPolicy(100,
			resilience.WithFixedDelay(time.Second),
			resilience.WithMaxElapsed(3*time.Second))},
	}
	for _, pc := range policies {
		start := vclock.Now(ctx)
		err := pc.p.Do(ctx, flaky(3))
		fmt.Printf("%-28s err=%-6v virtual time %v\n", pc.name, err, vclock.Now(ctx)-start)
	}

	// A policy object cannot decide WHICH errors are recoverable. The
	// Hive task processor treats a cancellation as transient and keeps
	// re-submitting the dead task (HIVE-23894) — no framework knob fixes
	// that; it is an IF bug in application logic.
	fmt.Println("\nwhat the framework cannot fix (HIVE-23894):")
	app := hive.New()
	p := hive.NewTaskProcessor(app)
	task := &hive.TezTask{ID: "q1", IsShutdown: true} // user cancelled it
	p.Submit(task)
	err := p.Drain(ctx)
	fmt.Printf("cancelled task was re-submitted until the budget ran out: err=%v\n", err)
}
