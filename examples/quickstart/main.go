// Quickstart: run both WASABI workflows on one bundled application and
// print every finding.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wasabi"
)

func main() {
	app, err := wasabi.AppByCode("HD")
	if err != nil {
		log.Fatal(err)
	}

	p := wasabi.NewPipeline(wasabi.DefaultConfig())
	report, err := p.Analyze(app)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed %s: %d retry structures identified, %d reached by its %d unit tests\n",
		report.App, report.StructuresTotal, report.StructuresTested, report.TestsTotal)
	fmt.Printf("fault-injection runs: %d (a naive plan would need %d)\n\n",
		report.PlannedRuns, report.NaiveRuns)

	for _, bug := range report.Bugs {
		fmt.Printf("[%-10s %-13s] %s\n    %s\n", bug.Workflow, bug.Kind, bug.Coordinator, bug.Details)
	}

	u := p.LLMUsage()
	fmt.Printf("\nsimulated GPT-4 usage: %d calls, %.1fK tokens, $%.2f\n",
		u.Calls, float64(u.TokensIn)/1000, u.CostUSD)
}
