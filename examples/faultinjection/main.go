// Fault injection, by hand: arm WASABI's injector against a single retry
// location of the HDFS miniature and watch the missing-cap bug manifest —
// the mechanics that the dynamic workflow automates (§3.1.2).
//
//	go run ./examples/faultinjection
package main

import (
	"context"
	"fmt"

	"wasabi/internal/apps/hdfs"
	"wasabi/internal/fault"
	"wasabi/internal/oracle"
	"wasabi/internal/testkit"
	"wasabi/internal/trace"
)

func main() {
	// The retry location: EditLogTailer.CatchUp retries fetchEdits on
	// SocketTimeoutException — with a backoff but NO cap (a seeded WHEN
	// bug modeled on standby-tailer hot loops).
	loc := fault.Location{
		Coordinator: "hdfs.EditLogTailer.CatchUp",
		Retried:     "hdfs.EditLogTailer.fetchEdits",
		Exception:   "SocketTimeoutException",
	}

	for _, k := range []int{1, 100} {
		rules := []fault.Rule{{Loc: loc, K: k}}
		run := trace.NewRun("example")
		ctx := trace.With(context.Background(), run)
		ctx = fault.With(ctx, fault.NewInjector(rules))

		app := hdfs.New()
		app.Meta.Put("edits/1", "mkdir /a")
		applied, err := hdfs.NewEditLogTailer(app).CatchUp(ctx)

		fmt.Printf("K=%d: CatchUp returned (%d edits, err=%v) after %v virtual time\n",
			k, applied, err, run.VNow())

		injections := 0
		for _, e := range run.Events() {
			if e.Kind == trace.KindInjection {
				injections++
			}
		}
		fmt.Printf("      %d exceptions injected before the fault healed\n", injections)

		res := testkit.Result{
			Test: testkit.Test{Name: "example.CatchUp", App: "HD"},
			Err:  err, Run: run, VDuration: run.VNow(),
		}
		for _, r := range oracle.Evaluate("HD", res, rules, oracle.DefaultOptions()) {
			fmt.Printf("      ORACLE [%s] %s\n", r.Kind, r.Details)
		}
		fmt.Println()
	}
}
