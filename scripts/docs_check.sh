#!/bin/sh
# docs_check.sh — verify that the documentation tree is self-consistent.
#
# Checks, in order:
#   1. Every *.md path mentioned in a Go source file exists (godoc
#      comments point readers at docs; a rename must not strand them).
#   2. Every relative markdown link in README.md and docs/*.md resolves
#      to an existing file (anchors and absolute URLs are skipped).
#   3. Every internal/* package states its paper section (a "§"
#      reference) somewhere in its package documentation.
#   4. Every daemon metric the server emits (server_sched_*,
#      server_queue_*, server_inflight_*, server_tenant_*,
#      server_trace_*, server_uptime_*, wasabi_build_*) is cataloged in
#      docs/OBSERVABILITY.md — the catalog must not drift behind the
#      code.
#   5. Every HTTP endpoint the server registers ("METHOD /path" mux
#      patterns) is documented in docs/SERVICE.md.
#   6. Every structured-log event name the server defines (the ev*
#      constants in internal/server/log.go) is cataloged in
#      docs/OBSERVABILITY.md — likewise the routing-layer events in
#      internal/llm/backends.go.
#   7. Every multi-backend routing metric (llm_backend_*) emitted by
#      internal/llm is cataloged in docs/OBSERVABILITY.md, and the
#      -llm-backends / -llm-hedge-after flags are documented in
#      docs/RESILIENCE.md.
#   8. Every retry idiom the corpus generator emits (the Idiom*
#      constants in internal/corpusgen/idioms.go) is documented in
#      docs/CORPUSGEN.md, and every ground-truth bug class (the Bug
#      constants in internal/apps/meta) appears in docs/CORPUS.md — an
#      undocumented idiom or class fails the gate.
#   9. The per-app composition table in docs/CORPUS.md matches the one
#      computed from the manifests (`studyreport -corpus-table`) line
#      for line — the documented table must not drift from the
#      ground truth.
#  10. Every snapshot-store metric (source_*) emitted by internal/source
#      and every cache metric (cache_*) emitted by internal/cache is
#      cataloged in docs/OBSERVABILITY.md.
#  11. The retry-facts format version (sast.FactsSchema) appears
#      verbatim in docs/ARCHITECTURE.md — a version bump must update
#      the documented format.
#
# Exits non-zero listing every violation; run via `make docs-check`.
set -u
cd "$(dirname "$0")/.."

fail=0
err() {
	echo "docs-check: $*" >&2
	fail=1
}

# 1. .md paths referenced from Go sources must exist (relative to repo root).
for src in $(grep -rlE '[A-Za-z0-9_./-]+\.md' --include='*.go' .); do
	for ref in $(grep -hoE '[A-Za-z0-9_./-]+\.md' "$src" | sort -u); do
		[ -f "$ref" ] || err "$src references $ref, which does not exist"
	done
done

# 2. Relative links in README.md and docs/*.md must resolve.
for doc in README.md docs/*.md; do
	[ -f "$doc" ] || continue
	dir=$(dirname "$doc")
	# Extract markdown link targets: ](target)
	for target in $(grep -hoE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//' | sort -u); do
		case $target in
		http://* | https://* | mailto:*) continue ;; # external
		'#'*) continue ;;                            # in-page anchor
		esac
		path=${target%%#*} # strip trailing anchor
		[ -n "$path" ] || continue
		[ -e "$dir/$path" ] || err "$doc links to $target, which does not resolve"
	done
done

# 3. Every internal package documents its paper section (§).
for pkgdir in $(find internal -type f -name '*.go' ! -name '*_test.go' -exec dirname {} \; | sort -u); do
	grep -l '§' "$pkgdir"/*.go >/dev/null 2>&1 ||
		err "package $pkgdir has no paper-section (§) reference in its godoc"
done

# 4. Server daemon metrics must be cataloged in docs/OBSERVABILITY.md.
for metric in $(grep -hoE '"(server_sched|server_queue|server_inflight|server_tenant|server_trace|server_uptime|wasabi_build)[a-z_]*"' internal/server/*.go | tr -d '"' | sort -u); do
	grep -q "$metric" docs/OBSERVABILITY.md ||
		err "metric $metric (internal/server) is not cataloged in docs/OBSERVABILITY.md"
done

# 5. Every registered HTTP endpoint must appear in docs/SERVICE.md
# (pprof endpoints are documented as a family via /debug/pprof/).
for pattern in $(grep -hoE 'HandleFunc\("(GET|POST|PUT|DELETE) [^"]+"' internal/server/*.go | sed -e 's/^HandleFunc("//' -e 's/"$//' -e 's/ /|/' | sort -u); do
	method=${pattern%%|*}
	path=${pattern#*|}
	grep -qF "$path" docs/SERVICE.md ||
		err "endpoint $method $path (internal/server) is not documented in docs/SERVICE.md"
done

# 6. Every structured-log event name must be cataloged in
# docs/OBSERVABILITY.md.
for ev in $(grep -hoE 'ev[A-Za-z]+ += +"[a-z_.]+"' internal/server/log.go internal/llm/backends.go | grep -oE '"[a-z_.]+"' | tr -d '"' | sort -u); do
	grep -qF "$ev" docs/OBSERVABILITY.md ||
		err "log event $ev is not cataloged in docs/OBSERVABILITY.md"
done

# 7. Multi-backend routing metrics and flags must be documented.
for metric in $(grep -hoE '"llm_backend[a-z_]*"' internal/llm/*.go | tr -d '"' | sort -u); do
	grep -q "$metric" docs/OBSERVABILITY.md ||
		err "metric $metric (internal/llm) is not cataloged in docs/OBSERVABILITY.md"
done
for flag in llm-backends llm-hedge-after; do
	grep -q -- "-$flag" docs/RESILIENCE.md ||
		err "flag -$flag is not documented in docs/RESILIENCE.md"
done

# 8. Generator taxonomy: every emitted idiom must be documented in
# docs/CORPUSGEN.md, every bug class in docs/CORPUS.md.
for idiom in $(grep -hoE 'Idiom[A-Za-z]+ += +"[a-z-]+"' internal/corpusgen/idioms.go | grep -oE '"[a-z-]+"' | tr -d '"' | sort -u); do
	grep -qF "$idiom" docs/CORPUSGEN.md ||
		err "generator idiom $idiom (internal/corpusgen) is not documented in docs/CORPUSGEN.md"
done
for bug in $(grep -hoE '[A-Za-z]+ Bug += +"[a-z-]+"' internal/apps/meta/meta.go | grep -oE '"[a-z-]+"' | tr -d '"' | sort -u); do
	grep -qF "$bug" docs/CORPUS.md ||
		err "bug class $bug (internal/apps/meta) is not documented in docs/CORPUS.md"
done

# 9. The documented per-app composition table must match the manifests.
table=$(go run ./cmd/studyreport -corpus-table 2>/dev/null)
if [ -z "$table" ]; then
	err "studyreport -corpus-table produced no output"
else
	echo "$table" | while IFS= read -r line; do
		[ -n "$line" ] || continue
		grep -qF "$line" docs/CORPUS.md ||
			echo "docs-check: composition-table row not found in docs/CORPUS.md: $line" >&2
	done
	missing=$(echo "$table" | while IFS= read -r line; do
		[ -n "$line" ] || continue
		grep -qF "$line" docs/CORPUS.md || echo x
	done)
	[ -z "$missing" ] || fail=1
fi

# 10. Snapshot-store and cache metrics must be cataloged in
# docs/OBSERVABILITY.md.
for metric in $(grep -hoE '"(source|cache)_[a-z_]+"' internal/source/*.go internal/cache/*.go | grep -v '_test' | tr -d '"' | sort -u); do
	grep -q "$metric" docs/OBSERVABILITY.md ||
		err "metric $metric (internal/source or internal/cache) is not cataloged in docs/OBSERVABILITY.md"
done

# 11. The facts format version must be documented verbatim in
# docs/ARCHITECTURE.md.
facts_schema=$(grep -hoE 'FactsSchema = "[^"]+"' internal/sast/facts.go | grep -oE '"[^"]+"' | tr -d '"')
if [ -z "$facts_schema" ]; then
	err "cannot extract FactsSchema from internal/sast/facts.go"
else
	grep -qF "$facts_schema" docs/ARCHITECTURE.md ||
		err "facts format version $facts_schema (internal/sast) is not documented in docs/ARCHITECTURE.md"
fi

if [ "$fail" -ne 0 ]; then
	echo "docs-check: FAILED" >&2
	exit 1
fi
echo "docs-check: OK"
